"""Randomized equivalence: batched round engine vs the round oracle.

Over 200 seeded configurations are replayed through both the
production round pipeline (einsum Look phase, vectorized local views,
KD-tree matching kernels, indexed round cache ON and OFF) and the
frozen pre-batching implementation in ``round_oracle``.  Local views
must agree *exactly* (they are rounded tuples); Look-phase and
matching destinations must agree to float noise.

The matching zoo deliberately includes the two delicate regimes named
by the paper: multiset targets with ``k·j`` points on a ``k``-fold
axis (Definition 6), and half-step rotated target orbits whose
nearest-target ties exercise the Lemma 14 chirality rule.
"""

import numpy as np
import pytest

from round_oracle import (
    oracle_local_view,
    oracle_match,
    oracle_ordered_orbits,
    oracle_step,
)

from repro import perf
from repro.core.configuration import Configuration
from repro.core.local_views import local_view, ordered_orbits
from repro.errors import ReproError
from repro.geometry.rotations import rotation_about_axis
from repro.patterns import polyhedra
from repro.patterns.library import named_pattern, pattern_names
from repro.robots.adversary import random_frames
from repro.robots.algorithms.go_to_center import go_to_center_algorithm
from repro.robots.algorithms.matching import match_configuration_to_pattern
from repro.robots.algorithms.pattern_formation import (
    make_pattern_formation_algorithm,
)
from repro.robots.scheduler import FsyncScheduler


@pytest.fixture(autouse=True)
def fresh_caches():
    perf.clear_caches()
    perf.set_enabled(True)
    yield
    perf.set_enabled(True)
    perf.clear_caches()


def _random_rotation(rng) -> np.ndarray:
    q = rng.normal(size=4)
    q /= np.linalg.norm(q)
    w, x, y, z = q
    return np.array([
        [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
        [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
        [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
    ])


def _posed(points, rng):
    rot = _random_rotation(rng)
    scale = float(rng.uniform(0.5, 3.0))
    shift = rng.normal(size=3)
    return [rot @ (scale * np.asarray(p, dtype=float)) + shift
            for p in points], rot, scale, shift


def _view_zoo(seed: int):
    """Configuration families exercising every local-view branch."""
    rng = np.random.default_rng(seed)
    family = seed % 6
    if family == 0:  # generic cloud
        n = int(rng.integers(4, 25))
        return [rng.normal(size=3) for _ in range(n)]
    if family == 1:  # polyhedron in a random pose (orbit radius ties)
        name = pattern_names()[seed % len(pattern_names())]
        return _posed(named_pattern(name), rng)[0]
    if family == 2:  # prism / antiprism / pyramid
        k = int(rng.integers(3, 9))
        builder = (polyhedra.prism, polyhedra.antiprism,
                   polyhedra.pyramid)[seed % 3]
        return _posed(builder(k), rng)[0]
    if family == 3:  # center-occupied (the sentinel view)
        n = int(rng.integers(4, 12))
        pts = [rng.normal(size=3) for _ in range(n)]
        center = Configuration(pts).center
        return pts + [center]
    if family == 4:  # near-axis points (meridian degeneracies)
        k = int(rng.integers(3, 7))
        pts = list(polyhedra.pyramid(k))
        pts.append(np.array([0.0, 0.0, float(rng.uniform(0.2, 0.8))]))
        return _posed(pts, rng)[0]
    # family == 5: two concentric shells (inner-ball gap clustering)
    k = int(rng.integers(3, 7))
    inner = [0.5 * p for p in polyhedra.regular_polygon_pattern(k)]
    outer = list(polyhedra.antiprism(k))
    return _posed(inner + outer, rng)[0]


@pytest.mark.parametrize("enabled", [True, False])
@pytest.mark.parametrize("seed", range(72))
def test_local_views_and_orbit_order_match_oracle(seed, enabled):
    perf.set_enabled(enabled)
    points = _view_zoo(seed)
    config = Configuration(points)
    for i in range(config.n):
        assert local_view(config, i) == oracle_local_view(config, i)
    report = config.symmetry
    if report.kind == "finite":
        try:
            expected = oracle_ordered_orbits(config, report.group)
        except ReproError:
            expected = None
        if expected is not None:
            assert ordered_orbits(config, report.group) == expected


def _step_zoo(seed: int):
    """(algorithm, frames, points, target) for one Look-phase replay."""
    rng = np.random.default_rng(seed)
    if seed % 2 == 0:
        n = int(rng.integers(4, 13))
        points = [rng.normal(size=3) for _ in range(n)]
        target = polyhedra.regular_polygon_pattern(n)
        algorithm = make_pattern_formation_algorithm(target)
    else:
        name = ("cube", "octahedron", "icosahedron")[seed % 3]
        points = list(named_pattern(name))
        target = None
        algorithm = go_to_center_algorithm
    frames = random_frames(len(points), rng)
    return algorithm, frames, points, target


@pytest.mark.parametrize("enabled", [True, False])
@pytest.mark.parametrize("seed", range(40))
def test_batched_step_matches_serial_oracle(seed, enabled):
    """The einsum Look phase must reproduce the per-robot observe loop
    (same algorithm on both sides — the Compute phase is shared)."""
    perf.set_enabled(enabled)
    algorithm, frames, points, target = _step_zoo(seed)
    scheduler = FsyncScheduler(algorithm, frames, target=target)
    batched = scheduler.step(points)
    perf.clear_caches()
    serial = oracle_step(algorithm, frames, points, target=target)
    scale = max(Configuration(points).radius, 1.0)
    for a, b in zip(batched, serial):
        assert float(np.linalg.norm(a - b)) <= 1e-7 * scale


def _cyclic_instance(seed: int):
    """A C_k-symmetric swarm and a compatible embedded target F̃.

    ``P`` is a union of free C_k orbits of generic points; ``F̃``
    rotates and re-scales each orbit about the axis.  Variants by
    seed: half-step rotations (equidistant nearest-target ties →
    Lemma 14 chirality rule) and a Definition 6 multiset orbit whose
    ``k`` targets collapse onto the k-fold axis.
    """
    rng = np.random.default_rng(10_000 + seed)
    k = int(rng.integers(3, 7))
    orbit_count = int(rng.integers(2, 4))
    tie_break = seed % 3 == 1
    multiset_axis = seed % 3 == 2

    axis = np.array([0.0, 0.0, 1.0])
    points: list[np.ndarray] = []
    targets: list[np.ndarray] = []
    for o in range(orbit_count):
        radius = float(rng.uniform(0.6, 2.0)) + o
        height = float(rng.uniform(-0.8, 0.8))
        phase = float(rng.uniform(0, 2 * np.pi))
        base = np.array([radius * np.cos(phase),
                         radius * np.sin(phase), height])
        orbit = [rotation_about_axis(axis, 2 * np.pi * j / k) @ base
                 for j in range(k)]
        points.extend(orbit)
        if multiset_axis and o == orbit_count - 1:
            # k robots head to one point ON the k-fold axis: the
            # stabilizer has size k, multiplicity k·1 (Definition 6).
            targets.extend([np.array([0.0, 0.0, height + 0.3])] * k)
        else:
            angle = np.pi / k if tie_break else float(rng.uniform(0, 2))
            twist = rotation_about_axis(axis, angle)
            factor = 1.0 if tie_break else float(rng.uniform(0.7, 1.3))
            targets.extend(_scale_about(twist @ p, axis, factor)
                           for p in orbit)
    pose_rot = _random_rotation(rng)
    pose_shift = rng.normal(size=3)
    points = [pose_rot @ p + pose_shift for p in points]
    targets = [pose_rot @ f + pose_shift for f in targets]
    return points, targets


def _scale_about(p, axis, factor):
    height = float(p @ axis)
    return factor * (p - height * axis) + height * axis


@pytest.mark.parametrize("enabled", [True, False])
@pytest.mark.parametrize("seed", range(80))
def test_matching_kernels_match_oracle(seed, enabled):
    perf.set_enabled(enabled)
    points, targets = _cyclic_instance(seed)
    config = Configuration(points)
    oracle_config = Configuration(points)
    try:
        expected = oracle_match(oracle_config, targets)
        expected_error = None
    except ReproError as exc:
        expected, expected_error = None, type(exc)
    if expected_error is not None:
        with pytest.raises(expected_error):
            match_configuration_to_pattern(config, targets)
        return
    actual = match_configuration_to_pattern(config, targets)
    scale = max(config.radius, 1.0)
    for a, b in zip(actual, expected):
        assert float(np.linalg.norm(a - b)) <= 1e-7 * scale


@pytest.mark.parametrize("seed", range(12))
def test_psi_pf_destinations_cache_on_equals_cache_off(seed):
    """The round cache's conjugated destinations must agree with the
    direct per-robot computation for every robot of a round.

    This property is about the per-robot reference path (the batched
    strategy queries the cache once, in the world frame), so the
    scheduler is pinned to ``batched=False``.
    """
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 13))
    points = [rng.normal(size=3) for _ in range(n)]
    target = polyhedra.regular_polygon_pattern(n)
    frames = random_frames(n, rng)
    algorithm = make_pattern_formation_algorithm(target)
    scheduler = FsyncScheduler(algorithm, frames, target=target,
                               batched=False)

    perf.set_enabled(True)
    perf.clear_caches()
    cached = scheduler.step(points)
    assert perf.cache_stats()["round"]["hits"] > 0
    perf.set_enabled(False)
    direct = scheduler.step(points)
    scale = max(Configuration(points).radius, 1.0)
    for a, b in zip(cached, direct):
        assert float(np.linalg.norm(a - b)) <= 1e-6 * scale
