"""Property-based tests (hypothesis) for the geometry substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.geometry.balls import smallest_enclosing_ball
from repro.geometry.rotations import (
    is_rotation_matrix,
    rotation_about_axis,
    rotation_angle,
    rotation_axis,
)
from repro.geometry.transforms import Similarity, are_similar
from repro.geometry.vectors import normalize, orthonormal_basis_for

finite_floats = st.floats(min_value=-10.0, max_value=10.0,
                          allow_nan=False, allow_infinity=False)
unit_scale_floats = st.floats(min_value=0.1, max_value=10.0)


def vectors(min_norm: float = 1e-3):
    return st.tuples(finite_floats, finite_floats, finite_floats).map(
        np.array).filter(lambda v: float(np.linalg.norm(v)) > min_norm)


def point_clouds(min_size=2, max_size=12):
    return st.lists(
        st.tuples(finite_floats, finite_floats, finite_floats),
        min_size=min_size, max_size=max_size,
    ).map(lambda rows: np.array(rows, dtype=float))


angles = st.floats(min_value=-6.0, max_value=6.0)
seeds = st.integers(min_value=0, max_value=2 ** 31 - 1)


class TestRotationProperties:
    @settings(max_examples=60, deadline=None)
    @given(axis=vectors(), angle=angles)
    def test_rotation_is_orthogonal(self, axis, angle):
        assert is_rotation_matrix(rotation_about_axis(axis, angle))

    @settings(max_examples=60, deadline=None)
    @given(axis=vectors(), angle=angles)
    def test_rotation_preserves_lengths(self, axis, angle):
        rot = rotation_about_axis(axis, angle)
        v = np.array([1.3, -0.7, 2.1])
        assert np.isclose(np.linalg.norm(rot @ v), np.linalg.norm(v))

    @settings(max_examples=60, deadline=None)
    @given(axis=vectors(),
           angle=st.floats(min_value=0.01, max_value=3.1))
    def test_axis_angle_round_trip(self, axis, angle):
        rot = rotation_about_axis(axis, angle)
        assert np.isclose(rotation_angle(rot), angle, atol=1e-7)
        recovered = rotation_axis(rot)
        expected = normalize(axis)
        assert (np.allclose(recovered, expected, atol=1e-6)
                or np.allclose(recovered, -expected, atol=1e-6))

    @settings(max_examples=40, deadline=None)
    @given(axis=vectors(), a=angles, b=angles)
    def test_same_axis_rotations_commute(self, axis, a, b):
        ra = rotation_about_axis(axis, a)
        rb = rotation_about_axis(axis, b)
        assert np.allclose(ra @ rb, rb @ ra, atol=1e-9)


class TestBasisProperties:
    @settings(max_examples=60, deadline=None)
    @given(w=vectors())
    def test_orthonormal_right_handed(self, w):
        u, v, w_hat = orthonormal_basis_for(w)
        mat = np.column_stack([u, v, w_hat])
        assert np.allclose(mat.T @ mat, np.eye(3), atol=1e-9)
        assert np.isclose(np.linalg.det(mat), 1.0, atol=1e-9)


class TestEnclosingBallProperties:
    @settings(max_examples=60, deadline=None)
    @given(cloud=point_clouds())
    def test_containment(self, cloud):
        ball = smallest_enclosing_ball(cloud)
        for p in cloud:
            assert ball.contains(p)

    @settings(max_examples=40, deadline=None)
    @given(cloud=point_clouds(min_size=3), seed=seeds)
    def test_minimality_against_random_balls(self, cloud, seed):
        # No ball centered at a perturbed center with a smaller radius
        # contains all points.
        ball = smallest_enclosing_ball(cloud)
        rng = np.random.default_rng(seed)
        direction = rng.normal(size=3)
        if np.linalg.norm(direction) < 1e-12:
            return
        direction /= np.linalg.norm(direction)
        shifted = ball.center + 0.01 * max(ball.radius, 0.1) * direction
        needed = max(float(np.linalg.norm(p - shifted)) for p in cloud)
        assert needed >= ball.radius - 1e-7

    @settings(max_examples=40, deadline=None)
    @given(cloud=point_clouds(), seed=seeds)
    def test_similarity_equivariance(self, cloud, seed):
        rng = np.random.default_rng(seed)
        sim = Similarity.random(rng)
        ball = smallest_enclosing_ball(cloud)
        moved = smallest_enclosing_ball(
            [sim.apply(p) for p in cloud])
        assert np.allclose(moved.center, sim.apply(ball.center),
                           atol=1e-6 * max(1.0, ball.radius) * sim.scale)
        assert np.isclose(moved.radius, sim.scale * ball.radius,
                          rtol=1e-6, atol=1e-9)


class TestSimilarityProperties:
    @settings(max_examples=40, deadline=None)
    @given(cloud=point_clouds(min_size=3), seed=seeds)
    def test_similar_to_own_image(self, cloud, seed):
        rng = np.random.default_rng(seed)
        sim = Similarity.random(rng)
        assert are_similar(cloud, [sim.apply(p) for p in cloud])

    @settings(max_examples=40, deadline=None)
    @given(cloud=point_clouds(min_size=3))
    def test_reflexive(self, cloud):
        assert are_similar(cloud, list(cloud))

    @settings(max_examples=30, deadline=None)
    @given(cloud=point_clouds(min_size=4), seed=seeds)
    def test_symmetric_relation(self, cloud, seed):
        rng = np.random.default_rng(seed)
        sim = Similarity.random(rng)
        image = [sim.apply(p) for p in cloud]
        assert are_similar(cloud, image) == are_similar(image, cloud)
