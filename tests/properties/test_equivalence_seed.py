"""Randomized equivalence: vectorized pipeline vs the seed oracle.

Roughly 200 seeded configurations — generic clouds, symmetric
polyhedra in random poses, multisets, center-occupied sets, collinear
chains, degenerate stacks — are pushed through both the production
``γ(P)`` / ``ϱ(P)`` pipeline (vectorized kernels, congruence cache ON
and OFF) and the frozen pre-vectorization implementation in
``seed_oracle``.  Every comparable fact must agree exactly.
"""

import numpy as np
import pytest

from seed_oracle import oracle_detect, oracle_symmetricity

from repro import perf
from repro.core.configuration import Configuration
from repro.core.symmetricity import symmetricity_of_multiset
from repro.groups.detection import detect_rotation_group
from repro.patterns import polyhedra
from repro.patterns.library import named_pattern, pattern_names


def _random_rotation(rng) -> np.ndarray:
    q = rng.normal(size=4)
    q /= np.linalg.norm(q)
    w, x, y, z = q
    return np.array([
        [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
        [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
        [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
    ])


def _posed(points, rng):
    rot = _random_rotation(rng)
    scale = float(rng.uniform(0.5, 3.0))
    shift = rng.normal(size=3)
    return [rot @ (scale * np.asarray(p, dtype=float)) + shift
            for p in points]


def _make_config(seed: int) -> list[np.ndarray]:
    """Deterministic config zoo indexed by seed (8 families)."""
    rng = np.random.default_rng(seed)
    family = seed % 8
    if family == 0:  # generic cloud
        n = int(rng.integers(4, 25))
        return [rng.normal(size=3) for _ in range(n)]
    if family == 1:  # library polyhedron in a random pose
        name = pattern_names()[seed % len(pattern_names())]
        return _posed(named_pattern(name), rng)
    if family == 2:  # prism / antiprism / pyramid family
        k = int(rng.integers(3, 9))
        builder = (polyhedra.prism, polyhedra.antiprism,
                   polyhedra.pyramid)[seed % 3]
        return _posed(builder(k), rng)
    if family == 3:  # multiset: polyhedron with uniform multiplicity
        name = pattern_names()[seed % len(pattern_names())]
        mult = 2 + seed % 3
        base = _posed(named_pattern(name), rng)
        return [p for p in base for _ in range(mult)]
    if family == 4:  # center-occupied set
        name = pattern_names()[seed % len(pattern_names())]
        base = [np.asarray(p, dtype=float) for p in named_pattern(name)]
        center = np.mean(base, axis=0)
        return _posed(base + [center], rng)
    if family == 5:  # symmetric collinear chain (D_inf)
        k = int(rng.integers(1, 5))
        heights = sorted(float(rng.uniform(0.2, 2.0)) for _ in range(k))
        pts = [np.array([0.0, 0.0, h]) for h in heights]
        pts += [np.array([0.0, 0.0, -h]) for h in heights]
        if seed % 2:
            pts.append(np.zeros(3))
        return _posed(pts, rng)
    if family == 6:  # asymmetric collinear chain (C_inf), multiplicities
        k = int(rng.integers(2, 6))
        heights = np.sort(rng.uniform(-2.0, 2.0, size=k))
        mult = 1 + seed % 3
        pts = [np.array([0.0, 0.0, float(h)]) for h in heights
               for _ in range(mult)]
        return _posed(pts, rng)
    # family == 7: degenerate stack
    n = int(rng.integers(2, 9))
    p = rng.normal(size=3)
    return [p.copy() for _ in range(n)]


def _facts_from_report(report) -> dict:
    facts = {
        "kind": report.kind,
        "center_occupied": report.center_occupied,
        "mult_profile": tuple(sorted(report.multiplicities)),
        "spec": report.spec,
        "infinite_kind": report.infinite_kind,
        "axis_profile": None,
    }
    if report.group is not None:
        facts["axis_profile"] = tuple(sorted(
            (a.fold, a.occupied) for a in report.group.axes))
    return facts


def _assert_matches(new_facts: dict, oracle_facts: dict, label: str):
    assert new_facts["kind"] == oracle_facts["kind"], label
    assert new_facts["center_occupied"] == \
        oracle_facts["center_occupied"], label
    assert new_facts["mult_profile"] == oracle_facts["mult_profile"], label
    assert new_facts["spec"] == oracle_facts["spec"], label
    assert new_facts["axis_profile"] == oracle_facts["axis_profile"], label
    assert new_facts["infinite_kind"] == oracle_facts["infinite_kind"], label


@pytest.mark.parametrize("seed", range(200))
def test_pipeline_matches_seed_implementation(seed):
    points = _make_config(seed)
    oracle_facts = oracle_detect(points)
    oracle_rho = oracle_symmetricity(points, oracle_facts)

    # Uncached vectorized detection.
    perf.set_enabled(False)
    try:
        direct = detect_rotation_group(points)
        config_off = Configuration(points)
        rho_off = symmetricity_of_multiset(config_off)
    finally:
        perf.set_enabled(True)
    _assert_matches(_facts_from_report(direct), oracle_facts,
                    f"seed={seed} uncached")
    assert frozenset(str(s) for s in rho_off.specs) == oracle_rho[0], \
        f"seed={seed} uncached rho"
    assert tuple(str(s) for s in rho_off.maximal) == oracle_rho[1], \
        f"seed={seed} uncached rho maximal"

    # Cached pipeline: first call populates, a similarity-transformed
    # copy must be served by alignment with identical invariants.
    perf.clear_caches()
    config = Configuration(points)
    _assert_matches(_facts_from_report(config.symmetry), oracle_facts,
                    f"seed={seed} cached-miss")
    rho = symmetricity_of_multiset(config)
    assert frozenset(str(s) for s in rho.specs) == oracle_rho[0], \
        f"seed={seed} cached rho"
    assert tuple(str(s) for s in rho.maximal) == oracle_rho[1], \
        f"seed={seed} cached rho maximal"

    rng = np.random.default_rng(seed + 10_000)
    twin = Configuration(_posed(points, rng))
    _assert_matches(_facts_from_report(twin.symmetry), oracle_facts,
                    f"seed={seed} cached-hit twin")
    rho_twin = symmetricity_of_multiset(twin)
    assert frozenset(str(s) for s in rho_twin.specs) == oracle_rho[0], \
        f"seed={seed} twin rho"
    if oracle_facts["kind"] == "finite":
        stats = perf.cache_stats()
        assert stats["symmetry"]["hits"] >= 1, \
            f"seed={seed}: congruent twin was not served from the cache"
