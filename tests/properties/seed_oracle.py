"""Reference (pre-vectorization) implementation of γ(P) and ϱ(P).

A frozen copy of the repository's original sequential detection and
symmetricity code, kept as an *oracle*: the randomized equivalence
suite replays hundreds of configurations through both this module and
the production pipeline (vectorized kernels + congruence cache) and
requires identical answers.  Do not "improve" this file — its value is
that it does not share code paths with what it checks.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import DetectionError
from repro.geometry.balls import smallest_enclosing_ball
from repro.geometry.rotations import rotation_about_axis
from repro.geometry.tolerance import DEFAULT_TOL, Tolerance
from repro.groups.group import GroupKind, GroupSpec, RotationGroup, element_key
from repro.groups.infinite import InfiniteGroupKind, detect_collinear_kind
from repro.groups.subgroups import (
    enumerate_concrete_subgroups,
    maximal_elements,
    proper_abstract_subgroups,
)


class _PointIndex:
    """Grid hash of a point multiset supporting tolerant lookups."""

    def __init__(self, points, multiplicities, cell: float) -> None:
        self.cell = cell
        self.table: dict[tuple, list[tuple[np.ndarray, int]]] = {}
        for p, m in zip(points, multiplicities):
            key = self._key(p)
            self.table.setdefault(key, []).append((np.asarray(p, float), m))

    def _key(self, p) -> tuple:
        arr = np.asarray(p, dtype=float)
        return tuple(int(math.floor(c / self.cell)) for c in arr)

    def find(self, p, slack: float):
        base = self._key(p)
        best = None
        best_d = None
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    key = (base[0] + dx, base[1] + dy, base[2] + dz)
                    for stored, mult in self.table.get(key, ()):
                        d = float(np.linalg.norm(stored - np.asarray(p)))
                        if d <= slack and (best_d is None or d < best_d):
                            best = (stored, mult)
                            best_d = d
        return best


def _collapse_multiset(points, slack: float):
    distinct: list[np.ndarray] = []
    multiplicities: list[int] = []
    for p in points:
        arr = np.asarray(p, dtype=float)
        matched = False
        for i, q in enumerate(distinct):
            if float(np.linalg.norm(arr - q)) <= slack:
                multiplicities[i] += 1
                matched = True
                break
        if not matched:
            distinct.append(arr)
            multiplicities.append(1)
    return distinct, multiplicities


def oracle_detect(points, tol: Tolerance = DEFAULT_TOL) -> dict:
    """Seed detection; returns a plain dict of comparable facts."""
    pts = [np.asarray(p, dtype=float) for p in points]
    if not pts:
        raise DetectionError("cannot detect symmetry of an empty set")
    ball = smallest_enclosing_ball(pts, tol)
    center = ball.center
    scale = max(ball.radius, 1.0)
    slack = 1e-6 * scale
    distinct, mults = _collapse_multiset(pts, slack)
    rel = [p - center for p in distinct]
    radii = [float(np.linalg.norm(r)) for r in rel]

    facts = {
        "kind": "finite",
        "center": center,
        "radius": ball.radius,
        "center_occupied": any(r <= slack for r in radii),
        "mult_profile": tuple(sorted(mults)),
        "distinct": distinct,
        "mults": mults,
        "spec": None,
        "axis_profile": None,
        "infinite_kind": None,
        "group": None,
    }

    if all(r <= slack for r in radii):
        facts["kind"] = "degenerate"
        return facts

    line = _common_line(rel, radii, slack)
    if line is not None:
        facts["kind"] = "collinear"
        facts["infinite_kind"] = detect_collinear_kind(rel, mults, tol)
        return facts

    elements = _symmetry_rotations(rel, mults, radii, slack, scale)
    group = RotationGroup(elements, tol=tol)
    group.axes = [
        axis.with_occupied(_axis_occupied(axis, rel, radii, slack,
                                          facts["center_occupied"]))
        for axis in group.axes
    ]
    facts["spec"] = group.spec
    facts["axis_profile"] = tuple(sorted(
        (a.fold, a.occupied) for a in group.axes))
    facts["group"] = group
    return facts


def _common_line(rel, radii, slack: float):
    direction = None
    for r, rad in zip(rel, radii):
        if rad <= slack:
            continue
        if direction is None:
            direction = r / rad
            continue
        if np.linalg.norm(np.cross(direction, r)) > slack * 10:
            return None
    return direction


def _axis_occupied(axis, rel, radii, slack: float,
                   center_occupied: bool) -> bool:
    if center_occupied:
        return True
    for r, rad in zip(rel, radii):
        if rad <= slack:
            continue
        perp = float(np.linalg.norm(np.cross(axis.direction, r)))
        if perp <= 10 * slack:
            return True
    return False


def _shells(rel, radii, mults, slack: float) -> list[list[int]]:
    buckets: list[tuple[float, int, list[int]]] = []
    for i, (rad, m) in enumerate(zip(radii, mults)):
        if rad <= slack:
            continue
        placed = False
        for brad, bm, idxs in buckets:
            if abs(brad - rad) <= 10 * slack and bm == m:
                idxs.append(i)
                placed = True
                break
        if not placed:
            buckets.append((rad, m, [i]))
    return [idxs for _, _, idxs in buckets]


def _symmetry_rotations(rel, mults, radii, slack: float,
                        scale: float) -> list[np.ndarray]:
    index = _PointIndex(rel, mults, cell=max(20 * slack, 1e-9))
    check_slack = 20 * slack

    def preserves(rot: np.ndarray) -> bool:
        for p, m in zip(rel, mults):
            hit = index.find(rot @ p, check_slack)
            if hit is None or hit[1] != m:
                return False
        return True

    shells = _shells(rel, radii, mults, slack)
    if not shells:
        raise DetectionError("no off-center points in finite detection")
    shells.sort(key=len)
    anchor_shell = shells[0]
    p1 = rel[anchor_shell[0]]
    r1 = float(np.linalg.norm(p1))

    if len(anchor_shell) == 1:
        return _cyclic_about_fixed_point(p1, rel, radii, mults, slack,
                                         preserves)

    p2 = None
    second_shell = None
    for shell in [anchor_shell] + shells[1:]:
        for idx in shell:
            cand = rel[idx]
            if np.linalg.norm(np.cross(p1, cand)) > check_slack * r1:
                p2 = cand
                break
        if p2 is not None:
            second_shell = shell
            break
    if p2 is None:
        raise DetectionError("configuration unexpectedly collinear")
    r2 = float(np.linalg.norm(p2))
    dot12 = float(np.dot(p1, p2))

    elements: dict[tuple, np.ndarray] = {}
    identity = np.eye(3)
    elements[element_key(identity)] = identity
    for i in anchor_shell:
        q1 = rel[i]
        for j in second_shell:
            q2 = rel[j]
            if abs(float(np.dot(q1, q2)) - dot12) > check_slack * max(
                    1.0, r1 * r2 / max(scale, 1e-12)) * scale:
                continue
            rot = _rotation_from_pairs(p1, p2, q1, q2)
            if rot is None:
                continue
            key = element_key(rot)
            if key in elements:
                continue
            if preserves(rot):
                elements[key] = rot
    return list(elements.values())


def _cyclic_about_fixed_point(p1, rel, radii, mults, slack, preserves):
    axis = p1 / float(np.linalg.norm(p1))
    off_counts = []
    for shell in _shells(rel, radii, mults, slack):
        off = 0
        for idx in shell:
            perp = float(np.linalg.norm(np.cross(axis, rel[idx])))
            if perp > 10 * slack:
                off += 1
        if off:
            off_counts.append(off)
    bound = math.gcd(*off_counts) if off_counts else 1
    elements = [np.eye(3)]
    for k in range(bound, 1, -1):
        if bound % k != 0:
            continue
        rot = rotation_about_axis(axis, 2.0 * np.pi / k)
        if preserves(rot):
            for i in range(1, k):
                elements.append(rotation_about_axis(
                    axis, 2.0 * np.pi * i / k))
            break
    return elements


def _rotation_from_pairs(p1, p2, q1, q2):
    n_p = np.cross(p1, p2)
    n_q = np.cross(q1, q2)
    ln_p = float(np.linalg.norm(n_p))
    ln_q = float(np.linalg.norm(n_q))
    if ln_p < 1e-12 or ln_q < 1e-12:
        return None
    frame_p = _orthoframe(p1, n_p)
    frame_q = _orthoframe(q1, n_q)
    if frame_p is None or frame_q is None:
        return None
    return frame_q @ frame_p.T


def _orthoframe(x, n):
    lx = float(np.linalg.norm(x))
    ln = float(np.linalg.norm(n))
    if lx < 1e-12 or ln < 1e-12:
        return None
    e0 = x / lx
    e2 = n / ln
    e1 = np.cross(e2, e0)
    return np.column_stack([e0, e1, e2])


# ----------------------------------------------------------------------
# Seed symmetricity (specs and maximal elements only)
# ----------------------------------------------------------------------

def oracle_symmetricity(points, facts: dict,
                        tol: Tolerance = DEFAULT_TOL) -> tuple:
    """Seed ϱ(P) computation from oracle detection ``facts``.

    Returns ``(frozenset of spec strings, tuple of maximal strings)``.
    """
    n = len(points)
    if facts["kind"] == "degenerate":
        specs = _degenerate_specs(n)
    elif facts["kind"] == "collinear":
        specs = _collinear_specs(facts)
    else:
        specs = _finite_specs(facts, tol)
    return (frozenset(str(s) for s in specs),
            tuple(str(s) for s in maximal_elements(specs)))


def _trivial() -> GroupSpec:
    return GroupSpec(GroupKind.CYCLIC, 1)


def _center_multiplicity(facts: dict) -> int:
    slack = 1e-6 * max(facts["radius"], 1.0)
    for p, m in zip(facts["distinct"], facts["mults"]):
        if float(np.linalg.norm(np.asarray(p) - facts["center"])) <= slack:
            return m
    return 0


def _finite_specs(facts: dict, tol: Tolerance) -> set:
    gamma = facts["group"]
    center = facts["center"]
    is_set = all(m == 1 for m in facts["mults"])
    unoccupied_lines = {axis.line_key() for axis in gamma.axes
                        if not axis.occupied}
    specs = {_trivial()}
    for sub in enumerate_concrete_subgroups(gamma, tol):
        if sub.is_trivial:
            continue
        if facts["center_occupied"]:
            if is_set:
                continue
            if _center_multiplicity(facts) % sub.order != 0:
                continue
        if is_set:
            valid = all(axis.line_key() in unoccupied_lines
                        for axis in sub.axes)
        else:
            valid = all(
                m % sub.stabilizer_size(np.asarray(p) - center) == 0
                for p, m in zip(facts["distinct"], facts["mults"]))
        if valid:
            specs.add(sub.spec)
    return specs


def _collinear_specs(facts: dict) -> set:
    specs = {_trivial()}
    center_mult = _center_multiplicity(facts)
    line_mults = [m for p, m in zip(facts["distinct"], facts["mults"])
                  if float(np.linalg.norm(np.asarray(p) - facts["center"]))
                  > 1e-6 * max(facts["radius"], 1.0)]
    gcd_all = int(np.gcd.reduce(line_mults + [center_mult or 0])) \
        if line_mults else max(center_mult, 1)
    symmetric = facts["infinite_kind"] is InfiniteGroupKind.D_INF

    for k in range(2, max(gcd_all, 1) + 1):
        if gcd_all % k == 0:
            specs.add(GroupSpec(GroupKind.CYCLIC, k))
    if symmetric:
        if center_mult % 2 == 0:
            specs.add(GroupSpec(GroupKind.CYCLIC, 2))
        for l in range(2, max(gcd_all, 2) + 1):
            if gcd_all % l == 0 and center_mult % (2 * l) == 0:
                specs.add(GroupSpec(GroupKind.DIHEDRAL, l))
    closed = set()
    for spec in specs:
        closed.add(spec)
        closed.update(proper_abstract_subgroups(spec))
    return closed


def _degenerate_specs(n: int) -> set:
    specs = {_trivial()}
    for k in range(2, n + 1):
        if n % k == 0:
            specs.add(GroupSpec(GroupKind.CYCLIC, k))
    for l in range(2, n // 2 + 1):
        if n % (2 * l) == 0:
            specs.add(GroupSpec(GroupKind.DIHEDRAL, l))
    if n % 12 == 0:
        specs.add(GroupSpec(GroupKind.TETRAHEDRAL))
    if n % 24 == 0:
        specs.add(GroupSpec(GroupKind.OCTAHEDRAL))
    if n % 60 == 0:
        specs.add(GroupSpec(GroupKind.ICOSAHEDRAL))
    return specs
