"""Worker-count and cache-level invariance over 200+ configurations.

The cache hierarchy's contract is that *nothing about it is
observable* in results: rows must be byte-identical whether trials run
inline (``jobs=1`` — no L2 store at all), across 2 or 4 workers
(L2 shared store active), or against a cold vs warm L3 on-disk store.
Each trial row serializes every float through ``float.hex`` so the
comparison is bit-exact, not tolerance-based.
"""

import json

import numpy as np
import pytest

from repro import perf
from repro.core.configuration import Configuration
from repro.core.symmetricity import symmetricity
from repro.patterns.library import named_pattern, pattern_names
from repro.perf import disk, parallel_map, spawn_seeds
from repro.robots.adversary import random_frames
from repro.robots.algorithms.go_to_center import (
    go_to_center_algorithm,
    recognize_goc_polyhedron,
)
from repro.robots.scheduler import FsyncScheduler

_PATTERNS = pattern_names()
_CASES = 216  # > 200 distinct configurations, by construction below


@pytest.fixture(autouse=True)
def fresh_caches():
    perf.clear_caches()
    yield
    perf.clear_caches()


def _case_points(index, stream):
    """Deterministic configuration for one case: library patterns,
    their congruent copies (exercising cache alignment), and generic
    random clouds, cycling so repeats land in different workers."""
    rng = np.random.default_rng(stream)
    kind = index % 3
    if kind == 0:
        return named_pattern(_PATTERNS[(index // 3) % len(_PATTERNS)]), rng
    if kind == 1:
        count = 4 + (index // 3) % 9
        return [rng.normal(size=3) for _ in range(count)], rng
    base = named_pattern(_PATTERNS[(index // 3) % len(_PATTERNS)])
    from repro.geometry.rotations import random_rotation

    rot = random_rotation(rng)
    scale = float(rng.uniform(0.5, 2.0))
    shift = rng.normal(size=3)
    return [shift + scale * (rot @ p) for p in base], rng


def _hex_points(points):
    return [[float(x).hex() for x in np.asarray(p, dtype=float)]
            for p in points]


def _equivalence_row(payload):
    index, stream = payload
    points, rng = _case_points(index, stream)
    config = Configuration(points)
    report = config.symmetry
    row = {
        "index": index,
        "n": config.n,
        "gamma": (str(report.spec) if report.kind == "finite"
                  else report.kind),
    }
    if report.kind == "finite" and not config.has_multiplicity:
        row["rho"] = sorted(str(s) for s in symmetricity(config).maximal)
    if recognize_goc_polyhedron(points) is not None:
        frames = random_frames(len(points), rng)
        scheduler = FsyncScheduler(go_to_center_algorithm, frames)
        row["after"] = _hex_points(scheduler.step(points))
    return row


def _run_sweep(jobs):
    streams = spawn_seeds(20260806, _CASES)
    items = list(zip(range(_CASES), streams))
    rows = parallel_map(_equivalence_row, items, jobs=jobs)
    return json.dumps(rows, sort_keys=True)


class TestWorkerCountInvariance:
    def test_rows_identical_for_jobs_1_2_4(self, tmp_path):
        """jobs=1 runs inline with no L2 store; 2 and 4 share one.
        All three byte-identical ⇒ neither the pool nor the shared
        store is observable."""
        disk.configure(root=tmp_path / "l3")
        try:
            reference = _run_sweep(jobs=1)
            assert _run_sweep(jobs=2) == reference
            assert _run_sweep(jobs=4) == reference
        finally:
            disk.configure()

    def test_rows_identical_for_cold_and_warm_l3(self, tmp_path):
        disk.configure(root=tmp_path / "l3-coldwarm")
        try:
            cold = _run_sweep(jobs=2)
            warm = _run_sweep(jobs=2)
            assert warm == cold
        finally:
            disk.configure()

    def test_rows_identical_with_l3_disabled(self, tmp_path):
        disk.configure(root=tmp_path / "l3-ref")
        try:
            with_l3 = _run_sweep(jobs=1)
        finally:
            disk.configure(enabled=False)
        try:
            without_l3 = _run_sweep(jobs=1)
        finally:
            disk.configure()
        assert with_l3 == without_l3
