"""Property-based tests for the formation pipeline invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.configuration import Configuration
from repro.core.formability import is_formable
from repro.geometry.rotations import random_rotation
from repro.patterns import polyhedra
from repro.patterns.library import named_pattern
from repro.robots.adversary import random_frames
from repro.robots.algorithms.embedding import embed_target
from repro.robots.algorithms.matching import match_configuration_to_pattern
from repro.robots.algorithms.pattern_formation import (
    make_pattern_formation_algorithm,
)
from repro.robots.scheduler import FsyncScheduler

seeds = st.integers(min_value=0, max_value=2 ** 31 - 1)


def generic_points(n, seed):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=3) for _ in range(n)]


class TestFormationProperties:
    @settings(max_examples=8, deadline=None)
    @given(seed=seeds)
    def test_generic_to_cube_any_frames(self, seed):
        initial = generic_points(8, seed % 1000)
        target = named_pattern("cube")
        frames = random_frames(8, np.random.default_rng(seed))
        algorithm = make_pattern_formation_algorithm(target)
        scheduler = FsyncScheduler(algorithm, frames, target=target)
        result = scheduler.run(
            initial, stop_condition=lambda c: c.is_similar_to(target),
            max_rounds=30)
        assert result.reached

    @settings(max_examples=6, deadline=None)
    @given(seed=seeds)
    def test_cube_to_octagon_any_frames(self, seed):
        initial = named_pattern("cube")
        target = named_pattern("octagon")
        frames = random_frames(8, np.random.default_rng(seed))
        algorithm = make_pattern_formation_algorithm(target)
        scheduler = FsyncScheduler(algorithm, frames, target=target)
        result = scheduler.run(
            initial, stop_condition=lambda c: c.is_similar_to(target),
            max_rounds=30)
        assert result.reached

    @settings(max_examples=6, deadline=None)
    @given(seed=seeds)
    def test_point_formation_from_generic(self, seed):
        n = 5 + seed % 6
        initial = generic_points(n, seed % 997)
        target = [np.zeros(3)] * n
        frames = random_frames(n, np.random.default_rng(seed))
        algorithm = make_pattern_formation_algorithm(target)
        scheduler = FsyncScheduler(algorithm, frames, target=target)
        result = scheduler.run(
            initial, stop_condition=lambda c: c.is_similar_to(target),
            max_rounds=30)
        assert result.reached


class TestEmbeddingProperties:
    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_embedding_equivariance_generic(self, seed):
        initial = generic_points(7, seed % 991)
        target = polyhedra.pyramid(6)
        config = Configuration(initial)
        embedded = embed_target(config, target)
        rot = random_rotation(np.random.default_rng(seed))
        moved = Configuration([rot @ p for p in initial])
        embedded_moved = embed_target(moved, target)
        a = sorted(tuple(np.round(rot @ p, 4)) for p in embedded)
        b = sorted(tuple(np.round(p, 4)) for p in embedded_moved)
        for x, y in zip(a, b):
            assert np.allclose(x, y, atol=1e-3)


class TestMatchingProperties:
    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_matching_is_bijection_generic(self, seed):
        initial = generic_points(9, seed % 983)
        target = generic_points(9, (seed + 1) % 983)
        config = Configuration(initial)
        assert is_formable(config, Configuration(target))
        embedded = embed_target(config, target)
        destinations = match_configuration_to_pattern(config, embedded)
        remaining = list(embedded)
        for d in destinations:
            hit = None
            for i, q in enumerate(remaining):
                if np.linalg.norm(d - q) <= 1e-6 * max(config.radius, 1.0):
                    hit = i
                    break
            assert hit is not None
            remaining.pop(hit)
        assert not remaining
