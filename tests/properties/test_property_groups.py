"""Property-based tests for rotation groups and symmetry detection."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.configuration import Configuration
from repro.core.decomposition import orbit_decomposition
from repro.core.symmetricity import symmetricity
from repro.geometry.rotations import random_rotation
from repro.groups.catalog import (
    cyclic_group,
    dihedral_group,
    group_from_spec,
    icosahedral_group,
    octahedral_group,
    tetrahedral_group,
)
from repro.groups.group import GroupSpec, element_key
from repro.groups.subgroups import (
    enumerate_concrete_subgroups,
    is_abstract_subgroup,
    proper_abstract_subgroups,
)

seeds = st.integers(min_value=0, max_value=2 ** 31 - 1)
spec_strings = st.sampled_from(
    ["C1", "C2", "C3", "C4", "C5", "C6", "C8",
     "D2", "D3", "D4", "D5", "D6", "T", "O", "I"])
group_factories = st.sampled_from([
    lambda: cyclic_group(3), lambda: cyclic_group(6),
    lambda: dihedral_group(2), lambda: dihedral_group(4),
    lambda: dihedral_group(5), lambda: tetrahedral_group(),
    lambda: octahedral_group(),
])


class TestGroupAlgebra:
    @settings(max_examples=20, deadline=None)
    @given(factory=group_factories)
    def test_closure_and_inverses(self, factory):
        group = factory()
        keys = {element_key(m) for m in group.elements}
        for a in group.elements:
            assert element_key(a.T) in keys
            for b in group.elements:
                assert element_key(a @ b) in keys

    @settings(max_examples=20, deadline=None)
    @given(factory=group_factories, seed=seeds)
    def test_conjugation_preserves_spec(self, factory, seed):
        group = factory()
        rot = random_rotation(np.random.default_rng(seed))
        assert group.transformed(rot).spec == group.spec

    @settings(max_examples=20, deadline=None)
    @given(factory=group_factories, seed=seeds)
    def test_orbit_size_divides_order(self, factory, seed):
        group = factory()
        rng = np.random.default_rng(seed)
        point = rng.normal(size=3)
        orbit = group.orbit(point)
        assert group.order % len(orbit) == 0
        assert len(orbit) * group.stabilizer_size(point) == group.order


class TestSubgroupLattice:
    @settings(max_examples=60, deadline=None)
    @given(a=spec_strings, b=spec_strings, c=spec_strings)
    def test_transitivity(self, a, b, c):
        sa, sb, sc = (GroupSpec.parse(t) for t in (a, b, c))
        if is_abstract_subgroup(sa, sb) and is_abstract_subgroup(sb, sc):
            assert is_abstract_subgroup(sa, sc)

    @settings(max_examples=60, deadline=None)
    @given(a=spec_strings, b=spec_strings)
    def test_antisymmetry(self, a, b):
        sa, sb = GroupSpec.parse(a), GroupSpec.parse(b)
        if sa != sb:
            assert not (is_abstract_subgroup(sa, sb)
                        and is_abstract_subgroup(sb, sa))

    @settings(max_examples=60, deadline=None)
    @given(a=spec_strings, b=spec_strings)
    def test_order_divides(self, a, b):
        sa, sb = GroupSpec.parse(a), GroupSpec.parse(b)
        if is_abstract_subgroup(sa, sb):
            assert sb.order % sa.order == 0

    @settings(max_examples=30, deadline=None)
    @given(a=spec_strings)
    def test_proper_subgroups_are_subgroups(self, a):
        spec = GroupSpec.parse(a)
        for sub in proper_abstract_subgroups(spec):
            assert is_abstract_subgroup(sub, spec)
            assert sub != spec


class TestConcreteEnumerationProperties:
    @settings(max_examples=15, deadline=None)
    @given(factory=group_factories)
    def test_enumerated_specs_respect_lattice(self, factory):
        group = factory()
        for sub in enumerate_concrete_subgroups(group):
            assert is_abstract_subgroup(sub.spec, group.spec)

    @settings(max_examples=15, deadline=None)
    @given(factory=group_factories)
    def test_lagrange(self, factory):
        group = factory()
        for sub in enumerate_concrete_subgroups(group):
            assert group.order % sub.order == 0


class TestDetectionProperties:
    @settings(max_examples=15, deadline=None)
    @given(spec_text=st.sampled_from(["C3", "C5", "D3", "D4", "T", "O"]),
           seed=seeds)
    def test_free_orbit_detection_round_trip(self, spec_text, seed):
        # gamma of a free orbit of G contains G; with a second shell
        # breaking accidental symmetry it is exactly G.
        from repro.patterns.orbits import generic_seed, transitive_set

        group = group_from_spec(GroupSpec.parse(spec_text))
        rot = random_rotation(np.random.default_rng(seed))
        moved = group.transformed(rot)
        seed_a = generic_seed(moved)
        points = transitive_set(moved, seed=seed_a)
        points += transitive_set(moved, seed=1.7 * (moved.elements[0] @ (
            seed_a + 0.21 * rot @ np.array([0.3, -0.5, 0.4]))))
        config = Configuration(points)
        report = config.symmetry
        assert report.kind == "finite"
        assert is_abstract_subgroup(GroupSpec.parse(spec_text),
                                    report.group.spec)

    @settings(max_examples=10, deadline=None)
    @given(seed=seeds)
    def test_orbit_decomposition_partitions(self, seed):
        from repro.patterns.library import compose_shells, named_pattern

        points = compose_shells(named_pattern("octahedron"),
                                named_pattern("cube"))
        rot = random_rotation(np.random.default_rng(seed))
        config = Configuration([rot @ p for p in points])
        orbits = orbit_decomposition(config, config.rotation_group)
        indices = sorted(i for orbit in orbits for i in orbit)
        assert indices == list(range(config.n))


class TestSymmetricityProperties:
    @settings(max_examples=8, deadline=None)
    @given(name=st.sampled_from(["cube", "octahedron", "tetrahedron",
                                 "cuboctahedron"]),
           seed=seeds)
    def test_rotation_invariance(self, name, seed):
        from repro.patterns.library import named_pattern

        points = named_pattern(name)
        rho_a = symmetricity(Configuration(points))
        rot = random_rotation(np.random.default_rng(seed))
        rho_b = symmetricity(Configuration([rot @ p for p in points]))
        assert rho_a.specs == rho_b.specs

    @settings(max_examples=8, deadline=None)
    @given(name=st.sampled_from(["cube", "octahedron", "icosahedron",
                                 "dodecahedron"]))
    def test_orders_divide_n(self, name):
        from repro.patterns.library import named_pattern

        points = named_pattern(name)
        rho = symmetricity(Configuration(points))
        for spec in rho.specs:
            assert len(points) % spec.order == 0
