"""Batched Compute vs the per-robot reference path.

The batched strategy (``compute_batch`` over the round's
:class:`repro.robots.model.BatchView`) is a pure execution strategy:
every destination it produces must be the one the per-robot callable
would have chosen from its own observation alone.  This suite holds
the two engines together three ways:

* per-round destination equivalence over a configuration zoo covering
  all three ported algorithms (go-to-center, ψ_SYM, ψ_PF) under
  adversarial local frames;
* byte-identical experiment rows for every registered experiment with
  the batched engine forced on and forced off;
* the fallback contract — algorithms without ``compute_batch`` (or
  declining a round) run through the reference loop and the
  ``scheduler.batched_fallbacks`` counter records it.
"""

import json
from dataclasses import asdict, is_dataclass

import numpy as np
import pytest

from repro import perf
from repro.core.configuration import Configuration
from repro.obs import metrics as _metrics
from repro.patterns import polyhedra
from repro.patterns.library import named_pattern
from repro.robots.adversary import random_frames
from repro.robots.algorithms.go_to_center import go_to_center_algorithm
from repro.robots.algorithms.pattern_formation import (
    make_pattern_formation_algorithm,
)
from repro.robots.algorithms.sym import psi_sym
from repro.robots.movement import NonRigidMovement
from repro.robots.scheduler import (
    FsyncScheduler,
    batched_compute_enabled,
    set_batched_compute,
)


@pytest.fixture(autouse=True)
def fresh_caches():
    perf.clear_caches()
    perf.set_enabled(True)
    yield
    perf.set_enabled(True)
    perf.clear_caches()


def _fallbacks() -> int:
    counters = _metrics.registry().snapshot()["counters"]
    return counters.get("scheduler.batched_fallbacks", 0)


def _posed(points, rng):
    q = rng.normal(size=4)
    q /= np.linalg.norm(q)
    w, x, y, z = q
    rot = np.array([
        [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
        [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
        [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
    ])
    scale = float(rng.uniform(0.5, 3.0))
    shift = rng.normal(size=3)
    return [rot @ (scale * np.asarray(p, dtype=float)) + shift
            for p in points]


def _instance(seed: int):
    """(algorithm, points, target) covering every batched code path."""
    rng = np.random.default_rng(seed)
    family = seed % 6
    if family == 0:  # ψ_PF on a generic cloud (matching + conjugation)
        n = int(rng.integers(4, 13))
        points = [rng.normal(size=3) for _ in range(n)]
        target = polyhedra.regular_polygon_pattern(n)
        return make_pattern_formation_algorithm(target), points, target
    if family == 1:  # go-to-center on its recognized polyhedra
        name = ("cube", "octahedron", "icosahedron")[seed % 3]
        return go_to_center_algorithm, _posed(named_pattern(name), rng), None
    if family == 2:  # ψ_SYM on a symmetric polyhedron (orbit moves)
        name = ("cube", "icosahedron", "dodecahedron")[seed % 3]
        return psi_sym, _posed(named_pattern(name), rng), None
    if family == 3:  # ψ_SYM on concentric shells (shrink selection)
        k = int(rng.integers(3, 7))
        inner = [0.5 * np.asarray(p) for p in
                 polyhedra.regular_polygon_pattern(k)]
        outer = list(polyhedra.antiprism(k))
        return psi_sym, _posed(inner + outer, rng), None
    if family == 4:  # ψ_SYM on a generic cloud (trivial-group branch)
        n = int(rng.integers(4, 10))
        return psi_sym, [rng.normal(size=3) for _ in range(n)], None
    # family == 5: ψ_SYM on a collinear configuration (infinite group)
    k = int(rng.integers(3, 6))
    line = [np.array([0.0, 0.0, float(h)]) for h in range(-k, k + 1)]
    return psi_sym, _posed(line, rng), None


@pytest.mark.parametrize("seed", range(36))
def test_batched_destinations_match_per_robot(seed):
    """Both engines land every robot on the same world destination."""
    algorithm, points, target = _instance(seed)
    frames = random_frames(len(points), np.random.default_rng(1000 + seed))

    perf.clear_caches()
    batched_scheduler = FsyncScheduler(algorithm, frames, target=target,
                                       batched=True)
    before = _fallbacks()
    batched = batched_scheduler.step(points)
    assert _fallbacks() == before  # the batched path actually ran

    perf.clear_caches()
    reference_scheduler = FsyncScheduler(algorithm, frames, target=target,
                                         batched=False)
    before = _fallbacks()
    reference = reference_scheduler.step(points)
    assert _fallbacks() == before + 1  # the reference loop actually ran

    scale = max(Configuration(points).radius, 1.0)
    for a, b in zip(batched, reference):
        assert float(np.linalg.norm(a - b)) <= 1e-7 * scale


@pytest.mark.parametrize("seed", range(8))
def test_batched_run_matches_per_robot_run(seed):
    """Whole ψ_PF executions agree round by round, not just one step."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 9))
    points = [rng.normal(size=3) for _ in range(n)]
    target = polyhedra.regular_polygon_pattern(n)
    frames = random_frames(n, rng)
    algorithm = make_pattern_formation_algorithm(target)

    traces = {}
    for batched in (True, False):
        perf.clear_caches()
        scheduler = FsyncScheduler(algorithm, frames, target=target,
                                   batched=batched)
        result = scheduler.run(
            points, stop_condition=lambda c: c.is_similar_to(target),
            max_rounds=30)
        assert result.reached
        traces[batched] = result.configurations

    assert len(traces[True]) == len(traces[False])
    for batched_config, reference_config in zip(traces[True], traces[False]):
        scale = max(reference_config.radius, 1.0)
        for a, b in zip(batched_config.points, reference_config.points):
            assert float(np.linalg.norm(a - b)) <= 1e-6 * scale


EXPERIMENTS = ("lemma7", "theorem41", "theorem11", "figure1",
               "plane_formation", "baseline_2d")


def _canonical_rows(rows) -> str:
    payload = [asdict(row) if is_dataclass(row) else row for row in rows]
    return json.dumps(payload, sort_keys=True, default=str)


@pytest.mark.parametrize("name", EXPERIMENTS)
def test_experiment_rows_identical_on_both_engines(name):
    """Forcing the per-robot reference engine changes no row bytes."""
    from repro.api import ExperimentSpec, run_experiment

    spec = ExperimentSpec(trials=2, seed=0, jobs=1)
    assert batched_compute_enabled()
    rendered = {}
    try:
        for batched in (True, False):
            set_batched_compute(batched)
            perf.clear_caches()
            rendered[batched] = _canonical_rows(
                run_experiment(name, spec).rows)
    finally:
        set_batched_compute(True)
    assert rendered[True] == rendered[False]


class _DecliningAlgorithm:
    """A batched algorithm that always declines the round."""

    def __call__(self, observation):
        return observation.own_position()

    def compute_batch(self, batch):
        return None


class TestFallback:
    def test_plain_callable_runs_reference_loop(self):
        n = 6
        rng = np.random.default_rng(2)
        points = [rng.normal(size=3) for _ in range(n)]

        def contract(observation):
            views = np.asarray(observation.points)
            me = views[observation.self_index]
            return me + 0.25 * (views.mean(axis=0) - me)

        scheduler = FsyncScheduler(contract, random_frames(n, rng))
        before = _fallbacks()
        destinations = scheduler.step(points)
        assert _fallbacks() == before + 1
        assert len(destinations) == n

    def test_declining_compute_batch_falls_back(self):
        n = 5
        rng = np.random.default_rng(3)
        points = [rng.normal(size=3) for _ in range(n)]
        scheduler = FsyncScheduler(_DecliningAlgorithm(),
                                   random_frames(n, rng))
        before = _fallbacks()
        reached = scheduler.step(points)
        assert _fallbacks() == before + 1
        for start, end in zip(points, reached):
            assert float(np.linalg.norm(end - np.asarray(start))) < 1e-9

    def test_process_default_disables_batching(self):
        n = 6
        rng = np.random.default_rng(4)
        points = [rng.normal(size=3) for _ in range(n)]
        target = polyhedra.regular_polygon_pattern(n)
        algorithm = make_pattern_formation_algorithm(target)
        scheduler = FsyncScheduler(algorithm, random_frames(n, rng),
                                   target=target)
        assert batched_compute_enabled()
        try:
            set_batched_compute(False)
            before = _fallbacks()
            scheduler.step(points)
            assert _fallbacks() == before + 1
        finally:
            set_batched_compute(True)
        # Explicit per-scheduler choice beats the process default.
        pinned = FsyncScheduler(algorithm, random_frames(n, rng),
                                target=target, batched=True)
        before = _fallbacks()
        pinned.step(points)
        assert _fallbacks() == before


def test_nonrigid_move_batch_matches_per_robot_stream():
    """``execute_batch`` consumes the adversary's stream exactly as the
    sequential per-robot loop does — bit-identical reached positions."""
    rng = np.random.default_rng(9)
    starts = rng.normal(size=(12, 3))
    destinations = starts + rng.normal(size=(12, 3))

    loop_model = NonRigidMovement(0.3, np.random.default_rng(77))
    looped = np.asarray([loop_model.execute(s, d)
                         for s, d in zip(starts, destinations)])
    batch_model = NonRigidMovement(0.3, np.random.default_rng(77))
    batched = batch_model.execute_batch(starts, destinations)
    assert np.array_equal(looped, batched)
