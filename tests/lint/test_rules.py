"""Good/bad fixture pairs for each reprolint rule (REP001-REP007)."""

from tests.lint.conftest import rules_of


class TestToleranceDiscipline:
    def test_bad_raw_literal(self, lint_source):
        violations, _ = lint_source("src/repro/foo.py", """\
            def close(a, b):
                return abs(a - b) < 1e-6
            """)
        assert rules_of(violations) == ["REP001"]
        assert "raw tolerance literal" in violations[0].message

    def test_bad_float_equality(self, lint_source):
        violations, _ = lint_source("src/repro/foo.py", """\
            def at_half(x):
                return x == 0.5
            """)
        assert rules_of(violations) == ["REP001"]
        assert "float equality" in violations[0].message

    def test_good_derived_slack(self, lint_source):
        violations, _ = lint_source("src/repro/foo.py", """\
            from repro.geometry.tolerance import DEFAULT_TOL

            def close(a, b, scale):
                return abs(a - b) < DEFAULT_TOL.geometric_slack(scale)
            """)
        assert violations == []

    def test_good_underflow_guard_exempt(self, lint_source):
        violations, _ = lint_source("src/repro/foo.py", """\
            def safe_div(num, denom):
                return num / max(denom, 1e-300)
            """)
        assert violations == []

    def test_good_tolerance_module_exempt(self, lint_source):
        violations, _ = lint_source(
            "src/repro/geometry/tolerance.py", """\
            ABS_TOL = 1e-7
            """)
        assert violations == []

    def test_macroscopic_literal_not_flagged(self, lint_source):
        violations, _ = lint_source("src/repro/foo.py", """\
            HALF = 0.5
            SCALE = 100.0
            """)
        assert violations == []


class TestObliviousnessContract:
    def test_bad_module_mutable(self, lint_source):
        violations, _ = lint_source(
            "src/repro/robots/algorithms/alg.py", """\
            _CACHE = {}
            """)
        assert rules_of(violations) == ["REP002"]
        assert "mutable container" in violations[0].message

    def test_bad_global_rebind(self, lint_source):
        violations, _ = lint_source(
            "src/repro/robots/algorithms/alg.py", """\
            _round = 0

            def compute(obs):
                global _round
                _round += 1
                return obs
            """)
        assert "REP002" in rules_of(violations)

    def test_bad_parameter_stash(self, lint_source):
        violations, _ = lint_source(
            "src/repro/robots/algorithms/alg.py", """\
            def compute(obs):
                obs.seen = True
                return obs
            """)
        assert rules_of(violations) == ["REP002"]
        assert "obs.seen" in violations[0].message

    def test_bad_setattr_stash(self, lint_source):
        violations, _ = lint_source(
            "src/repro/robots/algorithms/alg.py", """\
            def compute(robot, key, flags):
                setattr(robot, key, flags)
                return robot
            """)
        assert rules_of(violations) == ["REP002"]

    def test_good_immutable_constants_and_self(self, lint_source):
        violations, _ = lint_source(
            "src/repro/robots/algorithms/alg.py", """\
            from types import MappingProxyType

            __all__ = ["Alg"]
            _NAMES = ("a", "b")
            _TABLE = MappingProxyType({"a": 1})


            class Alg:
                def __init__(self):
                    self.name = "alg"

                def compute(self, obs):
                    local = dict(_TABLE)
                    local["b"] = obs
                    return local
            """)
        assert violations == []

    def test_out_of_scope_file_not_checked(self, lint_source):
        violations, _ = lint_source("src/repro/analysis/agg.py", """\
            _ROWS = []
            """)
        assert "REP002" not in rules_of(violations)


class TestCachePurity:
    def test_bad_repr_bytes(self, lint_source):
        violations, _ = lint_source("src/repro/perf/keys.py", """\
            def digest_of(part, h):
                h.update(repr(part).encode())
            """)
        assert rules_of(violations) == ["REP003"]
        assert "repr()" in violations[0].message

    def test_bad_mutable_default(self, lint_source):
        violations, _ = lint_source("src/repro/perf/memo.py", """\
            def lookup(key, store={}):
                return store.get(key)
            """)
        assert rules_of(violations) == ["REP003"]

    def test_bad_unjustified_global(self, lint_source):
        violations, _ = lint_source("src/repro/perf/state.py", """\
            _handle = None

            def reset():
                global _handle
                _handle = None
            """)
        assert rules_of(violations) == ["REP003"]

    def test_bad_fstring_in_key_builder(self, lint_source):
        violations, _ = lint_source("src/repro/perf/keys.py", """\
            def cache_key(shape, seed):
                return f"{shape}:{seed}"
            """)
        assert rules_of(violations) == ["REP003"]
        assert "f-string" in violations[0].message

    def test_good_error_fstring_in_key_builder(self, lint_source):
        violations, _ = lint_source("src/repro/perf/keys.py", """\
            def exact_digest(part, h):
                raise TypeError(f"no encoding for {type(part)}")
            """)
        assert violations == []

    def test_good_exact_bytes(self, lint_source):
        violations, _ = lint_source("src/repro/perf/keys.py", """\
            import numpy as np

            def cache_key(arr, h):
                h.update(np.ascontiguousarray(arr).tobytes())
            """)
        assert violations == []

    def test_out_of_scope_file_not_checked(self, lint_source):
        violations, _ = lint_source("src/repro/analysis/out.py", """\
            def label(part, h):
                h.update(repr(part).encode())
            """)
        assert "REP003" not in rules_of(violations)


class TestSeedingDiscipline:
    def test_bad_legacy_numpy(self, lint_source):
        violations, _ = lint_source("src/repro/gen.py", """\
            import numpy as np

            def sample():
                return np.random.rand(3)
            """)
        assert rules_of(violations) == ["REP004"]
        assert "module-global RNG" in violations[0].message

    def test_bad_stdlib_random(self, lint_source):
        violations, _ = lint_source("src/repro/gen.py", """\
            import random

            def pick(items):
                return random.choice(items)
            """)
        assert rules_of(violations) == ["REP004"]

    def test_bad_unseeded_default_rng(self, lint_source):
        violations, _ = lint_source("src/repro/gen.py", """\
            import numpy as np

            def stream():
                return np.random.default_rng()
            """)
        assert rules_of(violations) == ["REP004"]
        assert "OS entropy" in violations[0].message

    def test_bad_seed_arithmetic(self, lint_source):
        violations, _ = lint_source("src/repro/gen.py", """\
            import numpy as np

            def trial_stream(seed, t):
                return np.random.default_rng(seed + t)
            """)
        assert rules_of(violations) == ["REP004"]
        assert "fan-out" in violations[0].message

    def test_good_seeded_and_spawned(self, lint_source):
        violations, _ = lint_source("src/repro/gen.py", """\
            import numpy as np

            def streams(seed, n):
                root = np.random.SeedSequence(seed)
                return [np.random.default_rng(child)
                        for child in root.spawn(n)]
            """)
        assert violations == []


class TestRowDeterminism:
    def test_bad_wall_clock(self, lint_source):
        violations, _ = lint_source("src/repro/rows.py", """\
            import time

            def stamp(row):
                row["at"] = time.time()
                return row
            """)
        assert rules_of(violations) == ["REP005"]
        assert "wall clock" in violations[0].message

    def test_bad_date_today(self, lint_source):
        violations, _ = lint_source("benchmarks/run.py", """\
            import datetime

            def label():
                return datetime.date.today().isoformat()
            """)
        assert rules_of(violations) == ["REP005"]

    def test_bad_monotonic_clock_outside_audited_module(
            self, lint_source):
        violations, _ = lint_source("src/repro/obs/trace.py", """\
            import time

            def now():
                return time.perf_counter()
            """)
        assert rules_of(violations) == ["REP005"]
        assert "audited" in violations[0].message
        assert "repro.obs.clock" in violations[0].message

    def test_bad_monotonic_ns_variant(self, lint_source):
        violations, _ = lint_source("benchmarks/run.py", """\
            import time

            def tick():
                return time.monotonic_ns()
            """)
        assert rules_of(violations) == ["REP005"]

    def test_good_monotonic_clock_in_audited_module(self, lint_source):
        violations, _ = lint_source("src/repro/obs/clock.py", """\
            import time

            def _system_clock():
                return time.perf_counter()
            """)
        assert violations == []

    def test_bad_unsorted_listing(self, lint_source):
        violations, _ = lint_source("src/repro/scan.py", """\
            import os

            def inputs(root):
                return [name for name in os.listdir(root)]
            """)
        assert rules_of(violations) == ["REP005"]
        assert "sorted" in violations[0].message

    def test_good_sorted_listing(self, lint_source):
        violations, _ = lint_source("src/repro/scan.py", """\
            import os

            def inputs(root):
                return sorted(os.listdir(root))
            """)
        assert violations == []

    def test_bad_set_iteration(self, lint_source):
        violations, _ = lint_source("src/repro/rows.py", """\
            def rows(names):
                out = []
                for name in set(names):
                    out.append({"name": name})
                return out
            """)
        assert rules_of(violations) == ["REP005"]
        assert "PYTHONHASHSEED" in violations[0].message

    def test_good_sorted_iteration(self, lint_source):
        violations, _ = lint_source("src/repro/rows.py", """\
            def rows(names):
                out = []
                for name in sorted(set(names)):
                    out.append({"name": name})
                return out
            """)
        assert violations == []


class TestBackendPurity:
    def test_bad_accelerator_import_outside_backend(self, lint_source):
        violations, _ = lint_source("src/repro/foo.py", """\
            import numba

            def jitted(x):
                return numba.njit(x)
            """)
        assert rules_of(violations) == ["REP006"]
        assert "capability probing" in violations[0].message

    def test_bad_accelerator_from_import(self, lint_source):
        violations, _ = lint_source("src/repro/foo.py", """\
            from cupy import asarray
            """)
        assert rules_of(violations) == ["REP006"]

    def test_good_accelerator_import_inside_backend(self, lint_source):
        violations, _ = lint_source(
            "src/repro/backend/numba_backend.py", """\
            import numba
            from cupy import asarray
            """)
        assert violations == []

    def test_bad_protocol_op_in_kernel(self, lint_source):
        violations, _ = lint_source("src/repro/groups/detection.py", """\
            import numpy as np

            def order(radii):
                return np.lexsort((radii,))
            """)
        assert rules_of(violations) == ["REP006"]
        assert "get_backend().lexsort()" in violations[0].message

    def test_bad_svd_in_kernel(self, lint_source):
        violations, _ = lint_source(
            "src/repro/core/decomposition.py", """\
            import numpy as np

            def align(h):
                return np.linalg.svd(h)
            """)
        assert rules_of(violations) == ["REP006"]
        assert "kabsch" in violations[0].message

    def test_bad_kdtree_in_kernel(self, lint_source):
        violations, _ = lint_source(
            "src/repro/robots/algorithms/matching.py", """\
            from scipy.spatial import cKDTree

            def index(points):
                return cKDTree(points)
            """)
        assert rules_of(violations) == ["REP006", "REP006"]

    def test_good_kernel_through_backend(self, lint_source):
        violations, _ = lint_source("src/repro/groups/detection.py", """\
            import numpy as np

            from repro.backend import get_backend

            def order(radii):
                backend = get_backend()
                perm = backend.lexsort((radii,))
                return np.linalg.norm(radii[perm])
            """)
        assert violations == []

    def test_good_np_ops_outside_kernels_unrestricted(self, lint_source):
        violations, _ = lint_source("src/repro/analysis/foo.py", """\
            import numpy as np

            def order(radii):
                return np.argsort(radii)
            """)
        assert violations == []


class TestCampaignPurity:
    def test_bad_getpid_in_campaign(self, lint_source):
        violations, _ = lint_source("src/repro/campaign/foo.py", """\
            import os

            def tag():
                return os.getpid()
            """)
        assert rules_of(violations) == ["REP007"]
        assert "machine/process identity" in violations[0].message

    def test_bad_hostname_and_uuid(self, lint_source):
        violations, _ = lint_source("src/repro/campaign/foo.py", """\
            import socket
            import uuid

            def tag():
                return socket.gethostname(), uuid.uuid4()
            """)
        assert rules_of(violations) == ["REP007", "REP007"]

    def test_bad_secrets_call(self, lint_source):
        violations, _ = lint_source("src/repro/campaign/foo.py", """\
            import secrets

            def tag():
                return secrets.token_hex(8)
            """)
        assert rules_of(violations) == ["REP007"]
        assert "nondeterministic by design" in violations[0].message

    def test_bad_fstring_in_digest_builder(self, lint_source):
        violations, _ = lint_source("src/repro/campaign/foo.py", """\
            import hashlib

            def cell_digest(cell):
                text = f"{cell.experiment}:{cell.seed}"
                return hashlib.sha256(text.encode()).hexdigest()
            """)
        assert rules_of(violations) == ["REP007"]
        assert "digest builder" in violations[0].message

    def test_bad_repr_bytes_in_digest_builder(self, lint_source):
        violations, _ = lint_source("src/repro/campaign/foo.py", """\
            import hashlib

            def make_digest(spec):
                return hashlib.sha256(repr(spec).encode()).hexdigest()
            """)
        assert rules_of(violations) == ["REP007"]

    def test_good_canonical_json_digest(self, lint_source):
        violations, _ = lint_source("src/repro/campaign/foo.py", """\
            import hashlib
            import json

            def cell_digest(preimage):
                canonical = json.dumps(preimage, sort_keys=True,
                                       separators=(",", ":"))
                return hashlib.sha256(
                    canonical.encode("utf-8")).hexdigest()
            """)
        assert violations == []

    def test_good_fstring_in_digest_error_message(self, lint_source):
        violations, _ = lint_source("src/repro/campaign/foo.py", """\
            def cell_digest(cell):
                if cell is None:
                    raise ValueError(f"bad cell: {cell!r}")
                return "0" * 64
            """)
        assert violations == []

    def test_good_identity_calls_outside_campaign(self, lint_source):
        violations, _ = lint_source("src/repro/analysis/foo.py", """\
            import os

            def tag():
                return os.getpid()
            """)
        assert violations == []
