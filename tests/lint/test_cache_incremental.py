"""Incremental analysis cache: reuse, invalidation, and the
byte-identical-report contract."""

import json
import textwrap
import time

from repro.lint.cache import AnalysisCache
from repro.lint.cli import render_text, report_as_json
from repro.lint.framework import cache_signature, run_paths
from repro.lint.rules import default_rules

_HELPER_CLEAN = """\
    def stamp() -> float:
        return 0.0
"""

_HELPER_TAINTED = """\
    from repro.obs import clock

    def stamp() -> float:
        return clock.monotonic()
"""

_CONSUMER = """\
    from repro.helper import stamp
    from repro.perf.stats import exact_digest

    def key() -> bytes:
        t = stamp()
        return exact_digest(b"k", t)
"""


def write_tree(tmp_path, files):
    for rel_path, source in files.items():
        path = tmp_path / rel_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")


def lint(tmp_path, cache_dir=None):
    return run_paths([tmp_path], default_rules(), root=tmp_path,
                     cache_dir=cache_dir)


class TestWarmRuns:
    def test_warm_run_reuses_every_file(self, tmp_path):
        write_tree(tmp_path, {"src/repro/helper.py": _HELPER_CLEAN,
                              "src/repro/consumer.py": _CONSUMER})
        cache_dir = tmp_path / ".cache"
        cold = lint(tmp_path, cache_dir)
        assert cold.files_analyzed == 2 and cold.files_reused == 0
        warm = lint(tmp_path, cache_dir)
        assert warm.files_reused == 2 and warm.files_analyzed == 0

    def test_reports_byte_identical_cold_vs_warm(self, tmp_path):
        write_tree(tmp_path, {
            "src/repro/helper.py": _HELPER_TAINTED,
            "src/repro/consumer.py": _CONSUMER,
            "src/repro/bad.py": "EPS = 1e-6\n",
        })
        cache_dir = tmp_path / ".cache"
        cold = lint(tmp_path, cache_dir)
        warm = lint(tmp_path, cache_dir)
        no_cache = lint(tmp_path)
        for a, b in ((cold, warm), (cold, no_cache)):
            assert render_text(a) == render_text(b)
            assert json.dumps(report_as_json(a), sort_keys=True) == \
                json.dumps(report_as_json(b), sort_keys=True)

    def test_set_constants_do_not_break_the_cache(self, tmp_path):
        # ast.literal_eval of a set literal yields a Python set; the
        # summary must still serialize (the constant is dropped, not
        # crash json.dumps in AnalysisCache.save).
        write_tree(tmp_path, {"src/repro/tables.py": """\
            NAMES = {"clock", "uuid"}
            AXES = ("trials", "jobs")
        """})
        cache_dir = tmp_path / ".cache"
        cold = lint(tmp_path, cache_dir)
        warm = lint(tmp_path, cache_dir)
        assert cold.files_analyzed == 1
        assert warm.files_reused == 1
        assert render_text(cold) == render_text(warm)

    def test_cache_stats_never_enter_the_json_payload(self, tmp_path):
        write_tree(tmp_path, {"src/repro/helper.py": _HELPER_CLEAN})
        report = lint(tmp_path, tmp_path / ".cache")
        payload = report_as_json(report)
        assert "files_analyzed" not in payload
        assert "files_reused" not in payload


class TestInvalidation:
    def test_edited_file_is_reanalyzed(self, tmp_path):
        write_tree(tmp_path, {"src/repro/helper.py": _HELPER_CLEAN,
                              "src/repro/consumer.py": _CONSUMER})
        cache_dir = tmp_path / ".cache"
        lint(tmp_path, cache_dir)
        write_tree(tmp_path, {"src/repro/helper.py": _HELPER_TAINTED})
        warm = lint(tmp_path, cache_dir)
        assert warm.files_analyzed == 1
        assert warm.files_reused == 1

    def test_dependent_of_edited_file_is_rechecked(self, tmp_path):
        # consumer.py is served from the cache, but the project
        # fixpoint re-runs: editing only helper.py makes a REP008
        # finding appear in (unchanged) consumer.py.
        write_tree(tmp_path, {"src/repro/helper.py": _HELPER_CLEAN,
                              "src/repro/consumer.py": _CONSUMER})
        cache_dir = tmp_path / ".cache"
        before = lint(tmp_path, cache_dir)
        assert [v for v in before.violations if v.rule == "REP008"] \
            == []
        write_tree(tmp_path, {"src/repro/helper.py": _HELPER_TAINTED})
        after = lint(tmp_path, cache_dir)
        found = [v for v in after.violations if v.rule == "REP008"]
        assert len(found) == 1
        assert found[0].path == "src/repro/consumer.py"
        assert after.files_reused == 1  # consumer came from the cache

    def test_untouched_files_keep_byte_identical_findings(self,
                                                          tmp_path):
        write_tree(tmp_path, {
            "src/repro/bad.py": "EPS = 1e-6\n",
            "src/repro/other.py": "X = 1\n",
        })
        cache_dir = tmp_path / ".cache"
        cold = lint(tmp_path, cache_dir)
        write_tree(tmp_path, {"src/repro/other.py": "X = 2\n"})
        warm = lint(tmp_path, cache_dir)
        cold_bad = [v for v in cold.violations
                    if v.path == "src/repro/bad.py"]
        warm_bad = [v for v in warm.violations
                    if v.path == "src/repro/bad.py"]
        assert cold_bad == warm_bad
        assert warm.files_reused == 1

    def test_signature_change_invalidates_everything(self, tmp_path):
        write_tree(tmp_path, {"src/repro/helper.py": _HELPER_CLEAN})
        cache_dir = tmp_path / ".cache"
        lint(tmp_path, cache_dir)
        cache = AnalysisCache.load(cache_dir, "ir=0;rules=other")
        assert cache.entries == {}
        cache = AnalysisCache.load(cache_dir,
                                   cache_signature(default_rules()))
        assert cache.entries

    def test_corrupt_cache_is_ignored(self, tmp_path):
        write_tree(tmp_path, {"src/repro/helper.py": _HELPER_CLEAN})
        cache_dir = tmp_path / ".cache"
        lint(tmp_path, cache_dir)
        (cache_dir / "analysis.json").write_text("{not json",
                                                 encoding="utf-8")
        warm = lint(tmp_path, cache_dir)
        assert warm.files_analyzed == 1

    def test_deleted_files_are_pruned(self, tmp_path):
        write_tree(tmp_path, {"src/repro/helper.py": _HELPER_CLEAN,
                              "src/repro/gone.py": "X = 1\n"})
        cache_dir = tmp_path / ".cache"
        lint(tmp_path, cache_dir)
        (tmp_path / "src/repro/gone.py").unlink()
        lint(tmp_path, cache_dir)
        cache = AnalysisCache.load(cache_dir,
                                   cache_signature(default_rules()))
        assert set(cache.entries) == {"src/repro/helper.py"}


class TestWarmIsFaster:
    def test_warm_run_beats_cold_run(self, tmp_path):
        # Enough nontrivial files that parsing and per-file rules
        # dominate the fixed project-pass cost.
        files = {}
        body = "\n".join(
            f"def f{i}(a: int) -> int:\n"
            f"    values = [a + {i} for a in range(10)]\n"
            f"    return sum(sorted(values))\n"
            for i in range(40))
        for n in range(30):
            files[f"src/repro/gen/m{n:02d}.py"] = body
        write_tree(tmp_path, files)
        cache_dir = tmp_path / ".cache"

        start = time.perf_counter()
        cold = lint(tmp_path, cache_dir)
        cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm = lint(tmp_path, cache_dir)
        warm_s = time.perf_counter() - start

        assert cold.files_analyzed == 30 and warm.files_reused == 30
        assert render_text(cold) == render_text(warm)
        assert warm_s < cold_s
