"""Inline suppression semantics: justification is mandatory,
line scoping, REP000 meta findings, and comment-token parsing."""

from tests.lint.conftest import rules_of


class TestSuppressionHonored:
    def test_trailing_comment_silences_own_line(self, lint_source):
        violations, suppressed = lint_source("src/repro/foo.py", """\
            EPS = 1e-6  # reprolint: disable=REP001 -- documented fixture slack
            """)
        assert violations == []
        assert suppressed == 1

    def test_standalone_comment_silences_next_line(self, lint_source):
        violations, suppressed = lint_source("src/repro/foo.py", """\
            # reprolint: disable=REP001 -- documented fixture slack
            EPS = 1e-6
            """)
        assert violations == []
        assert suppressed == 1

    def test_scope_is_one_line_only(self, lint_source):
        violations, suppressed = lint_source("src/repro/foo.py", """\
            EPS = 1e-6  # reprolint: disable=REP001 -- covers this line only
            OTHER = 1e-7
            """)
        assert rules_of(violations) == ["REP001"]
        assert violations[0].line == 2
        assert suppressed == 1

    def test_rule_list_comma_separated(self, lint_source):
        violations, suppressed = lint_source("src/repro/gen.py", """\
            import numpy as np

            EPS = 1e-6  # reprolint: disable=REP001,REP004 -- fixture constant
            """)
        assert violations == []
        assert suppressed == 1

    def test_wrong_rule_id_does_not_silence(self, lint_source):
        violations, _ = lint_source("src/repro/foo.py", """\
            EPS = 1e-6  # reprolint: disable=REP005 -- mismatched rule
            """)
        assert rules_of(violations) == ["REP001"]


class TestMandatoryJustification:
    def test_missing_reason_reports_and_does_not_silence(
            self, lint_source):
        violations, suppressed = lint_source("src/repro/foo.py", """\
            EPS = 1e-6  # reprolint: disable=REP001
            """)
        assert rules_of(violations) == ["REP000", "REP001"]
        assert suppressed == 0
        meta = [v for v in violations if v.rule == "REP000"][0]
        assert "justification" in meta.message

    def test_unknown_rule_id_is_meta_finding(self, lint_source):
        violations, _ = lint_source("src/repro/foo.py", """\
            X = 1  # reprolint: disable=REP9999 -- bogus id
            """)
        assert rules_of(violations) == ["REP000"]

    def test_rep000_cannot_be_suppressed(self, lint_source):
        violations, _ = lint_source("src/repro/foo.py", """\
            X = 1  # reprolint: disable=REP000 -- trying to silence meta
            """)
        assert rules_of(violations) == ["REP000"]
        assert "cannot be suppressed" in violations[0].message


class TestCommentTokenParsing:
    def test_reprolint_text_in_string_is_ignored(self, lint_source):
        violations, _ = lint_source("src/repro/doc.py", '''\
            GUIDE = "write # reprolint: disable=REP001 to suppress"
            ''')
        assert violations == []

    def test_reprolint_text_in_docstring_is_ignored(self, lint_source):
        violations, _ = lint_source("src/repro/doc.py", '''\
            def helper():
                """Suppress with ``# reprolint: disable=REP001``."""
                return None
            ''')
        assert violations == []

    def test_syntax_error_reports_rep000(self, lint_source):
        violations, _ = lint_source("src/repro/broken.py", """\
            def broken(:
            """)
        assert rules_of(violations) == ["REP000"]
        assert "does not parse" in violations[0].message


class TestMultiLineStatements:
    """Suppressions are keyed to *physical* lines; a violation inside
    a multi-line statement anchors at its own sub-expression's line,
    and that is the line the comment must sit on (or precede)."""

    def test_comment_on_the_anchor_line_suppresses(self, lint_source):
        violations, suppressed = lint_source("src/repro/foo.py", """\
            SLACKS = (
                1e-6,  # reprolint: disable=REP001 -- fixture slack
            )
            """)
        assert violations == []
        assert suppressed == 1

    def test_comment_on_closing_paren_does_not_suppress(
            self, lint_source):
        violations, suppressed = lint_source("src/repro/foo.py", """\
            SLACKS = (
                1e-6,
            )  # reprolint: disable=REP001 -- wrong line: anchors above
            """)
        assert rules_of(violations) == ["REP001"]
        assert violations[0].line == 2
        assert suppressed == 0

    def test_standalone_comment_covers_first_physical_line_only(
            self, lint_source):
        violations, suppressed = lint_source("src/repro/foo.py", """\
            # reprolint: disable=REP001 -- covers line 2 only
            SLACKS = (1e-6,
                      1e-7)
            """)
        assert rules_of(violations) == ["REP001"]
        assert violations[0].line == 3
        assert suppressed == 1

    def test_each_continuation_line_suppressible_separately(
            self, lint_source):
        violations, suppressed = lint_source("src/repro/foo.py", """\
            SLACKS = (
                1e-6,  # reprolint: disable=REP001 -- fixture slack
                1e-7,  # reprolint: disable=REP001 -- fixture slack
            )
            """)
        assert violations == []
        assert suppressed == 2


class TestProjectRuleSuppression:
    """Cross-module findings honor the suppression table of the file
    the violation lands in, same as file rules."""

    def test_rep008_finding_suppressible_at_the_sink_line(
            self, lint_tree):
        report = lint_tree({
            "src/repro/helper.py": """\
                from repro.obs import clock

                def stamp() -> float:
                    return clock.monotonic()
            """,
            "src/repro/consumer.py": """\
                from repro.helper import stamp
                from repro.perf.stats import exact_digest

                def key() -> bytes:
                    t = stamp()
                    return exact_digest(b"k", t)  # reprolint: disable=REP008 -- exercised in tests
            """,
        })
        assert [v for v in report.violations
                if v.rule == "REP008"] == []
        assert report.suppressed == 1

    def test_wrong_file_suppression_does_not_leak_across_modules(
            self, lint_tree):
        # The suppression sits in helper.py; the finding lands in
        # consumer.py and must survive.
        report = lint_tree({
            "src/repro/helper.py": """\
                from repro.obs import clock

                def stamp() -> float:
                    return clock.monotonic()  # reprolint: disable=REP008 -- wrong file
            """,
            "src/repro/consumer.py": """\
                from repro.helper import stamp
                from repro.perf.stats import exact_digest

                def key() -> bytes:
                    t = stamp()
                    return exact_digest(b"k", t)
            """,
        })
        found = [v for v in report.violations if v.rule == "REP008"]
        assert len(found) == 1
        assert found[0].path == "src/repro/consumer.py"
