"""Unit tests for the cross-module engine: module summaries, the
serializable IR, and project-level resolution."""

import ast
import textwrap

from repro.lint.project import (Project, module_name_for,
                                summarize_module)


def summarize(path, source):
    return summarize_module(path, ast.parse(textwrap.dedent(source)))


class TestModuleNames:
    def test_src_layout_root_is_stripped(self):
        assert module_name_for("src/repro/obs/clock.py") == \
            "repro.obs.clock"

    def test_package_init_maps_to_package(self):
        assert module_name_for("src/repro/campaign/__init__.py") == \
            "repro.campaign"

    def test_non_src_paths_keep_their_prefix(self):
        assert module_name_for("benchmarks/bench_x.py") == \
            "benchmarks.bench_x"


class TestSummaries:
    def test_functions_methods_and_nested(self):
        summary = summarize("src/repro/m.py", """\
            def top():
                def inner():
                    return 1
                return inner()

            class Box:
                def get(self):
                    return 1
        """)
        assert set(summary.functions) >= \
            {"top", "top.inner", "Box.get", "<module>"}
        assert summary.functions["Box.get"].cls == "Box"

    def test_constants_and_their_lines(self):
        # Tuples canonicalize to lists so the value is identical
        # whether the summary is fresh or decoded from the cache;
        # non-JSON literals (sets) are dropped entirely.
        summary = summarize("src/repro/m.py", """\
            X = 1
            AXES = ("a", "b")
            TABLE = {"x", "y"}
        """)
        assert summary.constants["AXES"] == ["a", "b"]
        assert summary.constant_lines["AXES"] == 2
        assert "TABLE" not in summary.constants

    def test_missing_annotations(self):
        summary = summarize("src/repro/m.py", """\
            def typed(a: int) -> int:
                return a

            def untyped(a, *rest, **kw):
                return a
        """)
        assert summary.functions["typed"].missing_annotations == ()
        assert set(summary.functions["untyped"].missing_annotations) \
            == {"a", "*rest", "**kw", "return"}

    def test_init_return_is_not_required(self):
        summary = summarize("src/repro/m.py", """\
            class Box:
                def __init__(self, a: int):
                    self.a = a
        """)
        missing = summary.functions["Box.__init__"].missing_annotations
        assert "return" not in missing

    def test_class_fields_from_annotations(self):
        summary = summarize("src/repro/m.py", """\
            class Spec:
                trials: int
                seed: int | None = None
        """)
        assert summary.class_fields["Spec"] == ("trials", "seed")

    def test_return_call_refs_track_create_kwarg(self):
        summary = summarize("src/repro/m.py", """\
            from multiprocessing import shared_memory

            def make():
                shm = shared_memory.SharedMemory(create=True, size=8)
                return shm

            def attach(name):
                return shared_memory.SharedMemory(name=name)
        """)
        assert summary.functions["make"].return_call_refs == \
            (("shared_memory.SharedMemory", True),)
        assert summary.functions["attach"].return_call_refs == \
            (("shared_memory.SharedMemory", False),)

    def test_json_roundtrip_is_lossless(self):
        summary = summarize("src/repro/m.py", """\
            import os
            from multiprocessing import shared_memory

            LIMIT = 3

            class Box:
                size: int

                def __init__(self, shm):
                    self._shm = shm

                @classmethod
                def make(cls):
                    shm = shared_memory.SharedMemory(create=True,
                                                     size=8)
                    box = cls(shm)
                    return box

            def use(paths):
                for p in sorted(paths):
                    yield os.fspath(p)
        """)
        encoded = summary.as_json()
        decoded = type(summary).from_json(encoded)
        assert decoded.as_json() == encoded
        assert decoded.functions["Box.make"].resources
        assert decoded.constants == {"LIMIT": 3}


class TestProjectResolution:
    def project(self):
        helper = summarize("src/repro/helper.py", """\
            def stamp():
                return 1
        """)
        consumer = summarize("src/repro/consumer.py", """\
            from repro.helper import stamp
            from repro import helper

            class Box:
                def run(self):
                    return self.step()

                def step(self):
                    return stamp() + helper.stamp()
        """)
        return Project([helper, consumer]), consumer

    def test_imported_name_resolves(self):
        project, consumer = self.project()
        info = consumer.functions["Box.step"]
        assert project.resolve_ref(consumer, info, "stamp") == \
            "repro.helper.stamp"
        assert project.resolve_ref(consumer, info, "helper.stamp") == \
            "repro.helper.stamp"

    def test_self_method_resolves_to_class(self):
        project, consumer = self.project()
        info = consumer.functions["Box.run"]
        assert project.resolve_ref(consumer, info, "self.step") == \
            "repro.consumer.Box.step"

    def test_unresolved_names_pass_through(self):
        project, consumer = self.project()
        info = consumer.functions["Box.step"]
        assert project.resolve_ref(consumer, info, "sorted") == "sorted"

    def test_function_for_finds_cross_module_target(self):
        project, consumer = self.project()
        resolved = project.function_for("repro.helper.stamp")
        assert resolved is not None
        assert resolved[1].qualname == "stamp"

    def test_constructor_resolves_to_init(self):
        box = summarize("src/repro/box.py", """\
            class Box:
                size: int

                def __init__(self, size):
                    self.size = size
        """)
        project = Project([box])
        resolved = project.function_for("repro.box.Box")
        assert resolved is not None
        assert resolved[1].qualname == "Box.__init__"

    def test_import_closure(self):
        project, _ = self.project()
        closure = project.import_closure(["repro.consumer"])
        assert "repro.helper" in closure
        assert project.import_closure(["repro.helper"]) == \
            {"repro.helper"}
