"""Shared helper: lint a source snippet at a chosen relative path.

Rules are path-scoped (REP002 only fires under ``robots/algorithms/``,
REP003 under ``perf/`` ...), so every fixture writes its snippet into
a temp tree at a path that selects the rules under test.
"""

import textwrap

import pytest

from repro.lint.framework import lint_file, run_paths
from repro.lint.rules import default_rules


@pytest.fixture
def lint_source(tmp_path):
    def _lint(rel_path, source):
        path = tmp_path / rel_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        return lint_file(path, default_rules(), root=tmp_path)
    return _lint


@pytest.fixture
def lint_tree(tmp_path):
    """Write a ``{rel_path: source}`` tree and run the full driver on
    it — file rules *and* the cross-module project rules.  Returns the
    :class:`~repro.lint.framework.LintReport`; pass ``cache_dir`` to
    exercise the incremental cache."""
    def _lint(files, cache_dir=None, rules=None):
        for rel_path, source in files.items():
            path = tmp_path / rel_path
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
        return run_paths([tmp_path], default_rules() if rules is None
                         else rules, root=tmp_path,
                         cache_dir=cache_dir)
    return _lint


def rules_of(violations):
    return [v.rule for v in violations]
