"""Good/bad fixture pairs for the cross-module rules REP008–REP011.

Every *bad* case here includes at least one positive that a
single-file pass provably cannot detect: the same consumer file
linted on its own (the callee module absent from the project) must
report nothing, while the full tree must report the flow.
"""


def rules_of(report):
    return [v.rule for v in report.violations]


def by_rule(report, rule_id):
    return [v for v in report.violations if v.rule == rule_id]


# ---------------------------------------------------------------------------
# REP008 — determinism taint
# ---------------------------------------------------------------------------

_CLOCK_HELPER = """\
    from repro.obs import clock

    def stamp() -> float:
        return clock.monotonic()
"""


class TestRep008DeterminismTaint:
    def test_clock_through_helper_reaches_digest(self, lint_tree):
        report = lint_tree({
            "src/repro/helper.py": _CLOCK_HELPER,
            "src/repro/consumer.py": """\
                from repro.helper import stamp
                from repro.perf.stats import exact_digest

                def key() -> bytes:
                    t = stamp()
                    return exact_digest(b"k", t)
            """,
        })
        found = by_rule(report, "REP008")
        assert len(found) == 1
        assert found[0].path == "src/repro/consumer.py"
        assert found[0].line == 6
        assert "clock" in found[0].message
        assert "exact_digest" in found[0].message

    def test_single_file_pass_cannot_see_the_flow(self, lint_tree):
        # The consumer alone: ``stamp`` is unresolvable, so no taint.
        report = lint_tree({
            "src/repro/consumer.py": """\
                from repro.helper import stamp
                from repro.perf.stats import exact_digest

                def key() -> bytes:
                    t = stamp()
                    return exact_digest(b"k", t)
            """,
        })
        assert by_rule(report, "REP008") == []

    def test_callee_side_sink_reports_at_call_site(self, lint_tree):
        # The tainted value is produced by the caller and sunk by the
        # callee: the finding lands at the call site, naming the
        # callee it flowed through.
        report = lint_tree({
            "src/repro/sinkmod.py": """\
                from repro.perf.stats import exact_digest

                def remember(value) -> bytes:
                    return exact_digest(b"k", value)
            """,
            "src/repro/caller.py": """\
                from repro.obs import clock
                from repro.sinkmod import remember

                def record() -> bytes:
                    t = clock.monotonic()
                    return remember(t)
            """,
        })
        found = by_rule(report, "REP008")
        assert len(found) == 1
        assert found[0].path == "src/repro/caller.py"
        assert "via repro.sinkmod.remember" in found[0].message

    def test_identity_into_manifest_keyword(self, lint_tree):
        report = lint_tree({
            "src/repro/idhelper.py": """\
                import os

                def whoami() -> int:
                    return os.getpid()
            """,
            "src/repro/maker.py": """\
                from repro.idhelper import whoami
                from repro.obs.manifest import build_manifest

                def manifest(spec, rows, metrics):
                    return build_manifest(
                        experiment="x", spec=spec, rows=rows,
                        metrics=metrics, phase_totals={},
                        seed_streams=whoami())
            """,
        })
        found = by_rule(report, "REP008")
        assert len(found) == 1
        assert "identity" in found[0].message

    def test_phase_totals_keyword_is_exempt(self, lint_tree):
        # ``phase_totals`` is stripped by deterministic_view, so a
        # clock value there is fine by design.
        report = lint_tree({
            "src/repro/helper.py": _CLOCK_HELPER,
            "src/repro/maker.py": """\
                from repro.helper import stamp
                from repro.obs.manifest import build_manifest

                def manifest(spec, rows, metrics):
                    return build_manifest(
                        experiment="x", spec=spec, rows=rows,
                        metrics=metrics,
                        phase_totals={"total": stamp()})
            """,
        })
        assert by_rule(report, "REP008") == []

    def test_set_order_laundered_through_list(self, lint_tree):
        report = lint_tree({
            "src/repro/sethelper.py": """\
                def keys(mapping) -> list:
                    pending = set(mapping)
                    return list(pending)
            """,
            "src/repro/consumer.py": """\
                from repro.sethelper import keys
                from repro.perf.stats import exact_digest

                def digest(mapping) -> bytes:
                    return exact_digest(*keys(mapping))
            """,
        })
        found = by_rule(report, "REP008")
        assert len(found) == 1
        assert "set" in found[0].message

    def test_sorted_sanitizes_set_order(self, lint_tree):
        report = lint_tree({
            "src/repro/sethelper.py": """\
                def keys(mapping) -> list:
                    pending = set(mapping)
                    return sorted(pending)
            """,
            "src/repro/consumer.py": """\
                from repro.sethelper import keys
                from repro.perf.stats import exact_digest

                def digest(mapping) -> bytes:
                    return exact_digest(*keys(mapping))
            """,
        })
        assert by_rule(report, "REP008") == []

    def test_clock_not_reaching_a_sink_is_fine(self, lint_tree):
        report = lint_tree({
            "src/repro/helper.py": _CLOCK_HELPER,
            "src/repro/journal.py": """\
                from repro.helper import stamp

                def entry() -> dict:
                    return {"elapsed": stamp()}
            """,
        })
        assert by_rule(report, "REP008") == []


# ---------------------------------------------------------------------------
# REP009 — seed provenance
# ---------------------------------------------------------------------------


class TestRep009SeedProvenance:
    def test_cross_module_seed_arithmetic(self, lint_tree):
        report = lint_tree({
            "src/repro/derive.py": """\
                def child_seed(seed: int, trial: int) -> int:
                    return seed * 1000 + trial
            """,
            "src/repro/runner.py": """\
                from numpy.random import default_rng

                from repro.derive import child_seed

                def stream(seed: int, trial: int):
                    return default_rng(child_seed(seed, trial))
            """,
        })
        found = by_rule(report, "REP009")
        assert len(found) == 1
        assert found[0].path == "src/repro/runner.py"
        assert "SeedSequence.spawn" in found[0].message

    def test_single_file_pass_cannot_see_the_arithmetic(self,
                                                        lint_tree):
        report = lint_tree({
            "src/repro/runner.py": """\
                from numpy.random import default_rng

                from repro.derive import child_seed

                def stream(seed: int, trial: int):
                    return default_rng(child_seed(seed, trial))
            """,
        })
        assert by_rule(report, "REP009") == []

    def test_spawned_children_are_sanctioned(self, lint_tree):
        report = lint_tree({
            "src/repro/derive.py": """\
                import numpy as np

                def child_seeds(seed: int, count: int) -> list:
                    parent = np.random.SeedSequence(int(seed))
                    return list(parent.spawn(int(count)))
            """,
            "src/repro/runner.py": """\
                from numpy.random import default_rng

                from repro.derive import child_seeds

                def streams(seed: int, count: int) -> list:
                    return [default_rng(child)
                            for child in child_seeds(seed, count)]
            """,
        })
        assert by_rule(report, "REP009") == []

    def test_plain_seed_passthrough_is_fine(self, lint_tree):
        report = lint_tree({
            "src/repro/runner.py": """\
                from numpy.random import default_rng

                def stream(seed: int):
                    return default_rng(seed)
            """,
        })
        assert by_rule(report, "REP009") == []

    def test_scope_excludes_modules_outside_run_paths(self, lint_tree):
        # With a ``repro.api`` in the project, only its import
        # closure is in scope: the same bad flow in an unrelated
        # analysis script is not reported.
        files = {
            "src/repro/api.py": """\
                from repro.derive import child_seed

                def run_experiment(name: str, seed: int) -> int:
                    return child_seed(seed, 0)
            """,
            "src/repro/derive.py": """\
                def child_seed(seed: int, trial: int) -> int:
                    return seed * 1000 + trial
            """,
            "src/repro/scratch.py": """\
                from numpy.random import default_rng

                from repro.derive import child_seed

                def stream(seed: int, trial: int):
                    return default_rng(child_seed(seed, trial))
            """,
        }
        report = lint_tree(files)
        assert by_rule(report, "REP009") == []
        # ...but the moment the api itself imports the consumer, the
        # flow is on a gated path and is reported.
        files["src/repro/api.py"] = """\
            from repro.scratch import stream

            def run_experiment(name: str, seed: int):
                return stream(seed, 0)
        """
        report = lint_tree(files)
        found = by_rule(report, "REP009")
        assert len(found) == 1
        assert found[0].path == "src/repro/scratch.py"


# ---------------------------------------------------------------------------
# REP010 — shared-resource lifecycle
# ---------------------------------------------------------------------------


class TestRep010Lifecycle:
    def test_unguarded_create_with_risky_calls_leaks(self, lint_tree):
        report = lint_tree({
            "src/repro/seg.py": """\
                from multiprocessing import shared_memory

                def fill(data: bytes):
                    shm = shared_memory.SharedMemory(create=True,
                                                     size=len(data))
                    shm.buf[:len(data)] = data
                    publish(shm.name)
                    return shm

                def publish(name: str) -> None:
                    pass
            """,
        })
        found = by_rule(report, "REP010")
        assert len(found) == 1
        assert "leak" in found[0].message

    def test_guarded_create_is_fine(self, lint_tree):
        report = lint_tree({
            "src/repro/seg.py": """\
                from multiprocessing import shared_memory

                def fill(data: bytes):
                    shm = shared_memory.SharedMemory(create=True,
                                                     size=len(data))
                    try:
                        shm.buf[:len(data)] = data
                        publish(shm.name)
                    except BaseException:
                        shm.close()
                        shm.unlink()
                        raise
                    return shm

                def publish(name: str) -> None:
                    pass
            """,
        })
        assert by_rule(report, "REP010") == []

    def test_with_block_is_fine(self, lint_tree):
        report = lint_tree({
            "src/repro/seg.py": """\
                from multiprocessing import shared_memory

                def peek(name: str) -> bytes:
                    with shared_memory.SharedMemory(name=name) as shm:
                        return bytes(shm.buf[:8])
            """,
        })
        assert by_rule(report, "REP010") == []

    def test_attach_without_create_is_exempt(self, lint_tree):
        report = lint_tree({
            "src/repro/seg.py": """\
                from multiprocessing import shared_memory

                def attach(name: str):
                    shm = shared_memory.SharedMemory(name=name)
                    check(shm)
                    return shm

                def check(shm) -> None:
                    pass
            """,
        })
        assert by_rule(report, "REP010") == []

    def test_factory_consumer_cross_module_leak(self, lint_tree):
        # The factory wraps the segment in an object (the
        # SharedStore.create idiom); the consumer two modules away is
        # held to the same standard as a raw SharedMemory call.
        report = lint_tree({
            "src/repro/seg.py": """\
                from multiprocessing import shared_memory

                class Store:
                    def __init__(self, shm):
                        self._shm = shm

                    def close(self) -> None:
                        self._shm.close()

                def make_store():
                    shm = shared_memory.SharedMemory(create=True,
                                                     size=64)
                    try:
                        store = Store(shm)
                    except BaseException:
                        shm.close()
                        shm.unlink()
                        raise
                    return store
            """,
            "src/repro/user.py": """\
                from repro.seg import make_store

                def setup():
                    store = make_store()
                    warm_up(store)
                    return store

                def warm_up(store) -> None:
                    pass
            """,
        })
        found = by_rule(report, "REP010")
        assert [v.path for v in found] == ["src/repro/user.py"]

    def test_single_file_pass_cannot_see_the_factory(self, lint_tree):
        report = lint_tree({
            "src/repro/user.py": """\
                from repro.seg import make_store

                def setup():
                    store = make_store()
                    warm_up(store)
                    return store

                def warm_up(store) -> None:
                    pass
            """,
        })
        assert by_rule(report, "REP010") == []

    def test_factory_consumer_with_finally_is_fine(self, lint_tree):
        report = lint_tree({
            "src/repro/seg.py": """\
                from multiprocessing import shared_memory

                def make_store():
                    return shared_memory.SharedMemory(create=True,
                                                      size=64)
            """,
            "src/repro/user.py": """\
                from repro.seg import make_store

                def use() -> int:
                    store = make_store()
                    try:
                        return work(store)
                    finally:
                        store.close()
                        store.unlink()

                def work(store) -> int:
                    return 0
            """,
        })
        assert by_rule(report, "REP010") == []

    def test_thread_primitive_on_prefork_pool_path(self, lint_tree):
        report = lint_tree({
            "src/repro/campaign/pool.py": """\
                import threading

                from repro.campaign.dispatch import prepare

                class Pool:
                    def __init__(self, jobs: int) -> None:
                        self.jobs = jobs
                        prepare(self)

                def _worker_main(tasks) -> None:
                    # Post-fork: a thread here is the child's business.
                    pump = threading.Thread(target=list)
                    pump.start()
            """,
            "src/repro/campaign/dispatch.py": """\
                import threading

                def prepare(pool) -> None:
                    pool.guard = threading.Lock()
            """,
        })
        found = by_rule(report, "REP010")
        assert len(found) == 1
        assert found[0].path == "src/repro/campaign/dispatch.py"
        assert "pre-fork" in found[0].message


# ---------------------------------------------------------------------------
# REP011 — facade typing and axis drift
# ---------------------------------------------------------------------------


class TestRep011FacadeContract:
    def test_unannotated_public_facade_function(self, lint_tree):
        report = lint_tree({
            "src/repro/api.py": """\
                def run_experiment(name, spec) -> dict:
                    return {}

                def _internal(x):
                    return x
            """,
        })
        found = by_rule(report, "REP011")
        assert len(found) == 2
        assert all("run_experiment" in v.message for v in found)

    def test_fully_annotated_facade_is_fine(self, lint_tree):
        report = lint_tree({
            "src/repro/api.py": """\
                def run_experiment(name: str, spec: dict) -> dict:
                    return {}
            """,
        })
        assert by_rule(report, "REP011") == []

    def test_non_facade_modules_are_not_held_to_it(self, lint_tree):
        report = lint_tree({
            "src/repro/perf/stats.py": """\
                def accumulate(values):
                    return sum(values)
            """,
        })
        assert by_rule(report, "REP011") == []

    def test_grid_axis_drift_across_modules(self, lint_tree):
        report = lint_tree({
            "src/repro/api.py": """\
                class ExperimentSpec:
                    trials: int
                    seed: int
            """,
            "src/repro/campaign/spec.py": """\
                from repro.api import ExperimentSpec

                GRID_AXES = ("trials", "seed", "warp")
            """,
        })
        found = by_rule(report, "REP011")
        assert len(found) == 1
        assert found[0].path == "src/repro/campaign/spec.py"
        assert found[0].line == 3
        assert "warp" in found[0].message

    def test_axes_in_sync_are_fine(self, lint_tree):
        report = lint_tree({
            "src/repro/api.py": """\
                class ExperimentSpec:
                    trials: int
                    seed: int
            """,
            "src/repro/campaign/spec.py": """\
                from repro.api import ExperimentSpec

                GRID_AXES = ("trials", "seed")
            """,
        })
        assert by_rule(report, "REP011") == []

    def test_single_file_pass_cannot_see_the_drift(self, lint_tree):
        report = lint_tree({
            "src/repro/campaign/spec.py": """\
                from repro.api import ExperimentSpec

                GRID_AXES = ("trials", "seed", "warp")
            """,
        })
        assert by_rule(report, "REP011") == []

    def test_wire_field_without_spec_field(self, lint_tree):
        report = lint_tree({
            "src/repro/api.py": """\
                class ExperimentSpec:
                    trials: int
                    seed: int
            """,
            "src/repro/serve/protocol.py": """\
                from repro.api import ExperimentSpec

                SPEC_WIRE_FIELDS = ("trials", "seed", "turbo")
            """,
        })
        found = by_rule(report, "REP011")
        assert len(found) == 1
        assert found[0].path == "src/repro/serve/protocol.py"
        assert found[0].line == 3
        assert "turbo" in found[0].message

    def test_grid_axis_missing_from_wire(self, lint_tree):
        # The spec and grid agree; the wire tuple forgot an axis, so
        # the server cannot express that campaign cell.
        report = lint_tree({
            "src/repro/api.py": """\
                class ExperimentSpec:
                    trials: int
                    seed: int
                    backend: str
            """,
            "src/repro/campaign/spec.py": """\
                from repro.api import ExperimentSpec

                GRID_AXES = ("trials", "seed", "backend")
            """,
            "src/repro/serve/protocol.py": """\
                from repro.api import ExperimentSpec

                SPEC_WIRE_FIELDS = ("trials", "seed")
            """,
        })
        found = by_rule(report, "REP011")
        assert len(found) == 1
        assert found[0].path == "src/repro/serve/protocol.py"
        assert "backend" in found[0].message
        assert "campaign axis" in found[0].message

    def test_wire_and_axes_in_sync_are_fine(self, lint_tree):
        report = lint_tree({
            "src/repro/api.py": """\
                class ExperimentSpec:
                    trials: int
                    seed: int
                    backend: str
            """,
            "src/repro/campaign/spec.py": """\
                from repro.api import ExperimentSpec

                GRID_AXES = ("trials", "seed", "backend")
            """,
            "src/repro/serve/protocol.py": """\
                from repro.api import ExperimentSpec

                SPEC_WIRE_FIELDS = ("trials", "seed", "backend")
            """,
        })
        assert by_rule(report, "REP011") == []

    def test_plain_assignment_on_record_class(self, lint_tree):
        # `retries = 3` is not a dataclass field: it never reaches
        # asdict, the wire, or a digest.
        report = lint_tree({
            "src/repro/api.py": """\
                class RunQuery:
                    name: str
                    seed: int
                    retries = 3
            """,
        })
        found = by_rule(report, "REP011")
        assert len(found) == 1
        assert found[0].line == 4
        assert "retries" in found[0].message

    def test_plain_attrs_on_non_record_classes_are_fine(self, lint_tree):
        # No annotated fields → not record-shaped; class constants and
        # __slots__ are legitimate.
        report = lint_tree({
            "src/repro/api.py": """\
                class Dispatcher:
                    kind = "inline"

                    def dispatch(self, task: tuple) -> dict:
                        return {}
            """,
        })
        assert by_rule(report, "REP011") == []

    def test_private_plain_fields_are_fine(self, lint_tree):
        report = lint_tree({
            "src/repro/api.py": """\
                class RunQuery:
                    name: str
                    _cached = None
                    __slots__ = ("name",)
            """,
        })
        assert by_rule(report, "REP011") == []
