"""SARIF 2.1.0 output: structural pin, mirroring the JSON schema-v1
pin in test_cli.py."""

import json

from repro.lint.cli import TOOL_VERSION, main
from repro.lint.framework import LintReport, Violation
from repro.lint.rules import default_rules
from repro.lint.sarif import (SARIF_SCHEMA_URI, SARIF_VERSION,
                              report_as_sarif)


def sample_report():
    return LintReport(
        violations=[
            Violation(path="src/x.py", line=3, col=8, rule="REP001",
                      message="raw literal"),
            Violation(path="src/y.py", line=0, col=0, rule="REP000",
                      message="file does not parse"),
        ],
        suppressed=1, files=2)


class TestSarifStructure:
    def test_envelope_is_pinned(self):
        payload = report_as_sarif(sample_report(), default_rules(),
                                  TOOL_VERSION)
        assert payload["version"] == SARIF_VERSION == "2.1.0"
        assert payload["$schema"] == SARIF_SCHEMA_URI
        assert len(payload["runs"]) == 1
        driver = payload["runs"][0]["tool"]["driver"]
        assert driver["name"] == "reprolint"
        assert driver["version"] == TOOL_VERSION

    def test_driver_lists_every_rule_in_id_order(self):
        payload = report_as_sarif(sample_report(), default_rules(),
                                  TOOL_VERSION)
        descriptors = payload["runs"][0]["tool"]["driver"]["rules"]
        ids = [d["id"] for d in descriptors]
        assert ids == sorted(r.rule_id for r in default_rules())
        assert {"REP008", "REP009", "REP010", "REP011"} <= set(ids)
        for descriptor in descriptors:
            assert descriptor["shortDescription"]["text"]

    def test_result_shape(self):
        payload = report_as_sarif(sample_report(), default_rules(),
                                  TOOL_VERSION)
        results = payload["runs"][0]["results"]
        first = results[0]
        assert first == {
            "ruleId": "REP001",
            "ruleIndex": 0,
            "level": "error",
            "message": {"text": "raw literal"},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": "src/x.py"},
                    "region": {"startLine": 3, "startColumn": 9},
                },
            }],
        }

    def test_rule_index_matches_descriptor_table(self):
        payload = report_as_sarif(sample_report(), default_rules(),
                                  TOOL_VERSION)
        run = payload["runs"][0]
        descriptors = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            if "ruleIndex" in result:
                index = result["ruleIndex"]
                assert descriptors[index]["id"] == result["ruleId"]

    def test_meta_rule_has_no_index_and_clamped_line(self):
        payload = report_as_sarif(sample_report(), default_rules(),
                                  TOOL_VERSION)
        meta = payload["runs"][0]["results"][1]
        assert meta["ruleId"] == "REP000"
        assert "ruleIndex" not in meta
        region = meta["locations"][0]["physicalLocation"]["region"]
        # SARIF requires 1-based lines/columns.
        assert region["startLine"] == 1
        assert region["startColumn"] == 1


class TestSarifCli:
    def test_format_sarif_to_file(self, tmp_path, capsys):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "bad.py").write_text("EPS = 1e-6\n", encoding="utf-8")
        out_file = tmp_path / "report.sarif"
        code = main([str(pkg), "--format", "sarif",
                     "--output", str(out_file)])
        assert code == 1
        payload = json.loads(out_file.read_text(encoding="utf-8"))
        assert payload["version"] == "2.1.0"
        results = payload["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["REP001"]
        # stdout still carries the one-line text summary
        assert "1 finding(s)" in capsys.readouterr().out

    def test_format_sarif_to_stdout(self, tmp_path, capsys):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "ok.py").write_text("X = 1\n", encoding="utf-8")
        assert main([str(pkg), "--format", "sarif"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["runs"][0]["results"] == []
