"""CLI behavior: exit codes, JSON schema stability, and the
meta-test that the repository's own tree lints clean."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.lint.cli import main, report_as_json
from repro.lint.framework import LintReport, Violation

REPO_ROOT = Path(__file__).resolve().parents[2]


def write(tmp_path, rel_path, source):
    path = tmp_path / rel_path
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write(tmp_path, "pkg/ok.py", "X = 1\n")
        assert main([str(tmp_path / "pkg")]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        write(tmp_path, "pkg/bad.py", "EPS = 1e-6\n")
        assert main([str(tmp_path / "pkg")]) == 1
        assert "REP001" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "no-such-dir")]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP002", "REP003", "REP004",
                        "REP005"):
            assert rule_id in out


class TestJsonSchema:
    def test_schema_version_1_shape(self):
        report = LintReport(
            violations=[Violation(path="src/x.py", line=3, col=8,
                                  rule="REP001", message="raw literal")],
            suppressed=2, files=5)
        payload = report_as_json(report)
        assert payload == {
            "version": 1,
            "files": 5,
            "suppressed": 2,
            "by_rule": {"REP001": 1},
            "violations": [{
                "rule": "REP001",
                "path": "src/x.py",
                "line": 3,
                "col": 8,
                "message": "raw literal",
            }],
        }

    def test_json_output_file(self, tmp_path, capsys):
        write(tmp_path, "pkg/bad.py", "EPS = 1e-6\n")
        out_file = tmp_path / "report.json"
        code = main([str(tmp_path / "pkg"), "--format", "json",
                     "--output", str(out_file)])
        assert code == 1
        payload = json.loads(out_file.read_text())
        assert payload["version"] == 1
        assert payload["by_rule"] == {"REP001": 1}
        assert len(payload["violations"]) == 1
        # stdout carries only the one-line summary
        assert "1 finding(s)" in capsys.readouterr().out

    def test_json_stdout_parses(self, tmp_path, capsys):
        write(tmp_path, "pkg/ok.py", "X = 1\n")
        assert main([str(tmp_path / "pkg"), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["violations"] == []


class TestRepositoryIsClean:
    def test_src_and_benchmarks_lint_clean(self):
        """The repo enforces its own invariants: `python -m repro.lint
        src benchmarks` must exit 0 on the committed tree."""
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "src", "benchmarks"],
            cwd=REPO_ROOT, capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": ""},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_repro_cli_lint_subcommand(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "lint", "--list-rules"],
            cwd=REPO_ROOT, capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": ""},
        )
        assert proc.returncode == 0
        assert "REP001" in proc.stdout
