"""docs/STATIC_ANALYSIS.md and ``--list-rules`` must agree: every
registered rule has a ``### REPnnn`` section and vice versa."""

import re
from pathlib import Path

from repro.lint.cli import main
from repro.lint.rules import default_rules

DOCS = Path(__file__).resolve().parents[2] / "docs" / \
    "STATIC_ANALYSIS.md"

_HEADING = re.compile(r"^### (REP\d{3})\b", re.MULTILINE)


def documented_rule_ids():
    return _HEADING.findall(DOCS.read_text(encoding="utf-8"))


class TestDocsSync:
    def test_every_registered_rule_is_documented(self):
        documented = set(documented_rule_ids())
        registered = {rule.rule_id for rule in default_rules()}
        assert registered <= documented, \
            f"undocumented rules: {sorted(registered - documented)}"

    def test_every_documented_rule_is_registered(self):
        documented = set(documented_rule_ids())
        registered = {rule.rule_id for rule in default_rules()}
        assert documented <= registered, \
            f"stale doc sections: {sorted(documented - registered)}"

    def test_doc_sections_are_in_id_order(self):
        ids = documented_rule_ids()
        assert ids == sorted(ids)

    def test_list_rules_output_matches_docs(self, capsys):
        assert main(["--list-rules"]) == 0
        listed = [line.split()[0] for line
                  in capsys.readouterr().out.splitlines() if line]
        assert listed == sorted(documented_rule_ids())
