"""The array-backend protocol: probing, fallback, counters, equivalence.

The equivalence classes parametrize over every backend the current
environment can actually run (others skip cleanly — the CI
optional-deps leg installs numba so the parametrized cases light up
there).  Oracles are the exact NumPy expressions the kernels used
before the port; the reference backend must match them *byte for
byte*, accelerators to tight float tolerance.
"""

import warnings

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro import perf
from repro.backend import (
    available_backends,
    backend_name,
    get_backend,
    set_backend,
)
from repro.backend.base import ArrayBackend, NeighborIndex
from repro.backend.numpy_backend import NumpyBackend
from repro.core.configuration import Configuration
from repro.obs import metrics as _metrics
from repro.patterns.library import named_pattern

AVAILABLE = available_backends()

BACKEND_PARAMS = [
    pytest.param(name, marks=pytest.mark.skipif(
        not AVAILABLE[name], reason=f"backend {name!r} unavailable"))
    for name in sorted(AVAILABLE)
]


@pytest.fixture(autouse=True)
def restore_numpy_backend():
    yield
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        set_backend("numpy")


def _rng():
    return np.random.default_rng(2026)


def _points(rng, n):
    return rng.normal(size=(n, 3))


def _assert_matches(name, result, oracle):
    """Bit-identity for the reference backend, tight agreement else."""
    result = np.asarray(result)
    oracle = np.asarray(oracle)
    assert result.shape == oracle.shape
    if name == "numpy":
        assert result.tobytes() == oracle.tobytes()
    else:
        np.testing.assert_allclose(result, oracle, rtol=0, atol=5e-13)


class TestProbing:
    def test_numpy_reference_always_available(self):
        assert AVAILABLE["numpy"] is True
        assert NumpyBackend.is_available() is True

    def test_registry_names(self):
        assert set(AVAILABLE) == {"numpy", "numba", "cupy"}

    def test_abstract_base_is_never_available(self):
        assert ArrayBackend.is_available() is False

    def test_default_backend_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert set_backend(None).name == "numpy"
        assert backend_name() == "numpy"
        assert isinstance(get_backend(), NumpyBackend)

    def test_capabilities_are_informational(self):
        caps = set_backend("numpy").capabilities()
        assert caps["name"] == "numpy"
        assert caps["device"] == "cpu"


class TestFallback:
    def test_unknown_backend_falls_back_with_warning(self):
        before = _metrics.backend_metrics().get("backend.fallbacks", 0)
        with pytest.warns(RuntimeWarning, match="unknown backend"):
            resolved = set_backend("no-such-accelerator")
        assert resolved.name == "numpy"
        after = _metrics.backend_metrics().get("backend.fallbacks", 0)
        assert after == before + 1

    @pytest.mark.skipif(AVAILABLE["numba"],
                        reason="numba installed; fallback not exercised")
    def test_missing_numba_falls_back_with_warning(self):
        with pytest.warns(RuntimeWarning, match="not available"):
            resolved = set_backend("numba")
        assert resolved.name == "numpy"

    @pytest.mark.skipif(AVAILABLE["cupy"],
                        reason="cupy installed; fallback not exercised")
    def test_missing_cupy_falls_back_with_warning(self):
        with pytest.warns(RuntimeWarning, match="not available"):
            resolved = set_backend("cupy")
        assert resolved.name == "numpy"

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert set_backend(None).name == "numpy"


class TestCounters:
    def test_ops_count_into_backend_calls(self):
        backend = set_backend("numpy")
        rng = _rng()
        pts = _points(rng, 16)
        before = _metrics.backend_metrics()
        backend.einsum("gij,j->gi", np.stack([np.eye(3)] * 4), pts[0])
        backend.pairwise_distances(pts, pts)
        backend.argsort(pts[:, 0])
        backend.lexsort((pts[:, 0],))
        backend.kabsch(pts, pts)
        backend.neighbor_index(pts)
        after = _metrics.backend_metrics()
        for op in ("einsum", "pairwise_distances", "argsort",
                   "lexsort", "kabsch", "neighbor_index"):
            key = f"backend.calls.{op}"
            assert after.get(key, 0) == before.get(key, 0) + 1

    def test_backend_counters_are_performance_not_logical(self):
        logical, performance = _metrics.split_performance(
            {"backend.calls.einsum": 3, "scheduler.rounds": 2})
        assert "backend.calls.einsum" in performance
        assert "backend.calls.einsum" not in logical
        assert "scheduler.rounds" in logical


class TestEquivalence:
    @pytest.mark.parametrize("name", BACKEND_PARAMS)
    def test_einsum_specs(self, name):
        backend = set_backend(name)
        rng = _rng()
        rots = np.linalg.qr(rng.normal(size=(5, 3, 3)))[0]
        pts = _points(rng, 7)
        for spec, operands in (
                ("cij,mj->cmi", (rots, pts)),
                ("nji,nkj->nki", (rots, rng.normal(size=(5, 7, 3)))),
                ("gij,j->gi", (rots, pts[0])),
        ):
            _assert_matches(name, backend.einsum(spec, *operands),
                            np.einsum(spec, *operands))

    @pytest.mark.parametrize("name", BACKEND_PARAMS)
    def test_pairwise_distances(self, name):
        backend = set_backend(name)
        rng = _rng()
        a, b = _points(rng, 20), _points(rng, 11)
        oracle = np.linalg.norm(a[:, None, :] - b[None, :, :], axis=2)
        _assert_matches(name, backend.pairwise_distances(a, b), oracle)

    @pytest.mark.parametrize("name", BACKEND_PARAMS)
    def test_sorting(self, name):
        backend = set_backend(name)
        rng = _rng()
        values = rng.normal(size=64)
        keys = (rng.integers(0, 4, size=64).astype(float), values)
        # Permutations are integer outputs: exact for every backend.
        assert np.array_equal(backend.argsort(values),
                              np.argsort(values, kind="stable"))
        assert np.array_equal(backend.lexsort(keys), np.lexsort(keys))

    @pytest.mark.parametrize("name", BACKEND_PARAMS)
    def test_kabsch(self, name):
        backend = set_backend(name)
        rng = _rng()
        src = _points(rng, 12)
        rot = np.linalg.qr(rng.normal(size=(3, 3)))[0]
        rot *= np.linalg.det(rot)  # force det +1
        dst = src @ rot.T
        solved = backend.kabsch(src, dst)
        np.testing.assert_allclose(solved, rot, atol=1e-10)
        assert np.linalg.det(solved) > 0
        # Byte-stability against the frozen oracle expression.
        u, _, vt = np.linalg.svd(src.T @ dst)
        d = np.sign(np.linalg.det(vt.T @ u.T))
        oracle = vt.T @ np.diag([1.0, 1.0, d]) @ u.T
        _assert_matches(name, solved, oracle)

    @pytest.mark.parametrize("name", BACKEND_PARAMS)
    def test_neighbor_index(self, name):
        backend = set_backend(name)
        rng = _rng()
        stored, queries = _points(rng, 30), _points(rng, 9)
        index = backend.neighbor_index(stored)
        assert isinstance(index, NeighborIndex)
        tree = cKDTree(stored)
        dist, idx = index.query(queries, k=1, distance_upper_bound=1.5)
        odist, oidx = tree.query(queries, k=1, distance_upper_bound=1.5)
        assert np.array_equal(idx, oidx)
        _assert_matches(name, dist, odist)
        balls = index.query_ball(queries, 1.0)
        oballs = tree.query_ball_point(queries, 1.0)
        assert [sorted(b) for b in balls] == [sorted(b) for b in oballs]
        pairs = {tuple(sorted(p)) for p in
                 np.asarray(index.query_pairs(0.8)).reshape(-1, 2)}
        assert pairs == {tuple(sorted(p)) for p in tree.query_pairs(0.8)}

class TestDenseNeighborIndex:
    """The small-n dense/k-d hybrid behind ``neighbor_index``."""

    def _counters(self):
        metrics = _metrics.backend_metrics()
        return (metrics.get("backend.neighbor_index.dense", 0),
                metrics.get("backend.neighbor_index.kd", 0),
                metrics.get("backend.neighbor_index.dense_promotions", 0))

    def test_cutover_routes_by_size(self):
        from repro.backend.base import DENSE_INDEX_CUTOVER, \
            DenseNeighborIndex

        backend = set_backend("numpy")
        rng = _rng()
        dense0, kd0, _ = self._counters()
        small = backend.neighbor_index(
            _points(rng, DENSE_INDEX_CUTOVER))
        assert isinstance(small, DenseNeighborIndex)
        large = backend.neighbor_index(
            _points(rng, DENSE_INDEX_CUTOVER + 1))
        assert not isinstance(large, DenseNeighborIndex)
        dense1, kd1, _ = self._counters()
        assert (dense1 - dense0, kd1 - kd0) == (1, 1)

    def test_cutover_gauge_in_cache_stats(self):
        from repro.backend.base import DENSE_INDEX_CUTOVER

        backend = set_backend("numpy")
        backend.neighbor_index(_points(_rng(), 8))
        metrics = _metrics.backend_metrics()
        assert metrics["backend.neighbor_index.dense_cutover"] == \
            DENSE_INDEX_CUTOVER

    def test_heavy_query_promotes_to_spatial_index(self):
        backend = set_backend("numpy")
        rng = _rng()
        stored = _points(rng, 200)
        index = backend.neighbor_index(stored)
        tree = cKDTree(stored)
        _, _, promoted0 = self._counters()
        # 200 queries x 200 points > the dense work limit: the index
        # must hand off to the real spatial structure, once.
        queries = _points(rng, 200)
        dist, idx = index.query(queries)
        _, _, promoted1 = self._counters()
        assert promoted1 == promoted0 + 1
        odist, oidx = tree.query(queries)
        assert np.array_equal(idx, oidx)
        assert dist.tobytes() == odist.tobytes()
        # A second heavy query reuses the promoted structure: the
        # promotion is paid once per index, not per call.
        index.query(queries)
        _, _, promoted2 = self._counters()
        assert promoted2 == promoted1

    def test_dense_semantics_match_ckdtree(self):
        backend = set_backend("numpy")
        rng = _rng()
        stored = _points(rng, 12)
        index = backend.neighbor_index(stored)
        tree = cKDTree(stored)
        # Misses report inf distance and index m, exactly like scipy.
        far = stored + 100.0
        dist, idx = index.query(far, k=1, distance_upper_bound=0.5)
        odist, oidx = tree.query(far, k=1, distance_upper_bound=0.5)
        assert np.array_equal(idx, oidx)
        assert np.all(np.isinf(dist)) and np.all(idx == len(stored))
        # Exact ties resolve to the lowest stored index.
        twin = np.vstack([stored[3], stored])
        tie = backend.neighbor_index(twin)
        _, tie_idx = tie.query(stored[3])
        assert tie_idx == 0
        # Single-point query_ball returns a flat list, like scipy's
        # 1-d input path.
        ball = index.query_ball(stored[0], 1.0)
        assert ball == sorted(tree.query_ball_point(stored[0], 1.0))


class TestPipeline:
    @pytest.mark.parametrize("name", BACKEND_PARAMS)
    def test_symmetry_detection_pipeline(self, name):
        perf.clear_caches()
        set_backend("numpy")
        oracle_spec = Configuration(named_pattern("cube")).symmetry.group.spec
        perf.clear_caches()
        set_backend(name)
        report = Configuration(named_pattern("cube")).symmetry
        assert report.kind == "finite"
        assert report.group.spec == oracle_spec
        perf.clear_caches()
