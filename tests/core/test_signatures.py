"""Tests for the equivariant geometric signatures."""

import numpy as np
import pytest

from repro.core.signatures import (
    cylindrical_signature,
    frame_signature,
    group_arrangement_signature,
    line_signature,
)
from repro.geometry.rotations import random_rotation, rotation_about_axis
from repro.groups.catalog import tetrahedral_group
from repro.patterns import polyhedra
from repro.patterns.library import named_pattern


def rel_and_mults(points):
    arr = [np.asarray(p, dtype=float) for p in points]
    center = np.mean(arr, axis=0)
    return [p - center for p in arr], [1] * len(arr)


class TestCylindricalSignature:
    def test_invariant_under_axis_rotation(self):
        rel, mults = rel_and_mults(polyhedra.pyramid(5))
        axis = np.array([0.0, 0.0, 1.0])
        sig_a = cylindrical_signature(rel, mults, axis)
        spin = rotation_about_axis(axis, 0.83)
        sig_b = cylindrical_signature([spin @ p for p in rel], mults, axis)
        assert sig_a == sig_b

    def test_equivariance(self, rng):
        rel, mults = rel_and_mults(polyhedra.pyramid(4))
        axis = np.array([0.0, 0.0, 1.0])
        rot = random_rotation(rng)
        sig_a = cylindrical_signature(rel, mults, axis)
        sig_b = cylindrical_signature([rot @ p for p in rel], mults,
                                      rot @ axis)
        assert sig_a == sig_b

    def test_distinguishes_axis_directions(self):
        # A pyramid is chiral-free but top/bottom asymmetric: the two
        # directions give different signatures.
        rel, mults = rel_and_mults(polyhedra.pyramid(4))
        axis = np.array([0.0, 0.0, 1.0])
        assert cylindrical_signature(rel, mults, axis) != \
            cylindrical_signature(rel, mults, -axis)

    def test_symmetric_config_ties_directions(self):
        rel, mults = rel_and_mults(polyhedra.prism(4))
        axis = np.array([0.0, 0.0, 1.0])
        assert cylindrical_signature(rel, mults, axis) == \
            cylindrical_signature(rel, mults, -axis)

    def test_multiplicities_enter(self):
        rel, mults = rel_and_mults(polyhedra.pyramid(4))
        doubled = [2] * len(rel)
        assert cylindrical_signature(rel, mults, [0, 0, 1]) != \
            cylindrical_signature(rel, doubled, [0, 0, 1])


class TestLineSignature:
    def test_sign_invariance(self):
        rel, mults = rel_and_mults(polyhedra.pyramid(5))
        axis = np.array([0.0, 0.0, 1.0])
        assert line_signature(rel, mults, axis) == \
            line_signature(rel, mults, -axis)

    def test_distinguishes_axes(self):
        rel, mults = rel_and_mults(polyhedra.prism(3))
        principal = np.array([0.0, 0.0, 1.0])
        secondary = np.array([1.0, 0.0, 0.0])
        assert line_signature(rel, mults, principal) != \
            line_signature(rel, mults, secondary)


class TestFrameSignature:
    def test_equivariance(self, rng):
        rel, mults = rel_and_mults(named_pattern("cube"))
        frame = np.eye(3)
        rot = random_rotation(rng)
        sig_a = frame_signature(rel, mults, frame)
        sig_b = frame_signature([rot @ p for p in rel], mults,
                                rot @ frame)
        assert sig_a == sig_b


class TestGroupArrangementSignature:
    def test_equivariance(self, rng):
        rel, mults = rel_and_mults(named_pattern("icosahedron"))
        group = tetrahedral_group()
        rot = random_rotation(rng)
        sig_a = group_arrangement_signature(rel, mults, group)
        sig_b = group_arrangement_signature(
            [rot @ p for p in rel], mults, group.transformed(rot))
        assert sig_a == sig_b

    def test_distinguishes_arrangements(self):
        # The icosahedron relative to T in standard position vs T
        # rotated by an angle outside T's normalizer.
        rel, mults = rel_and_mults(named_pattern("icosahedron"))
        group = tetrahedral_group()
        spun = group.transformed(rotation_about_axis([0, 0, 1], 0.4))
        assert group_arrangement_signature(rel, mults, group) != \
            group_arrangement_signature(rel, mults, spun)
