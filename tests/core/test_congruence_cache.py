"""Behavior of the congruence caches (:mod:`repro.perf`)."""

import numpy as np
import pytest

from repro import perf
from repro.core.configuration import Configuration
from repro.core.symmetricity import symmetricity
from repro.geometry.rotations import rotation_about_axis
from repro.patterns.library import named_pattern
from repro.patterns import polyhedra
from repro.robots.adversary import random_frames
from repro.robots.algorithms.pattern_formation import (
    make_pattern_formation_algorithm,
)
from repro.robots.scheduler import FsyncScheduler


@pytest.fixture(autouse=True)
def fresh_caches():
    perf.clear_caches()
    perf.set_enabled(True)
    yield
    perf.set_enabled(True)
    perf.clear_caches()


def _congruent_copy(points, seed: int):
    rng = np.random.default_rng(seed)
    rot = rotation_about_axis(rng.normal(size=3), float(rng.uniform(0, 3)))
    scale = float(rng.uniform(0.5, 4.0))
    shift = rng.normal(size=3)
    return [rot @ (scale * np.asarray(p)) + shift for p in points]


class TestSymmetryCache:
    def test_congruent_queries_share_one_detection(self):
        points = named_pattern("icosahedron")
        Configuration(points).symmetry
        for seed in range(5):
            Configuration(_congruent_copy(points, seed)).symmetry
        stats = perf.cache_stats()
        assert stats["symmetry"]["misses"] == 1
        assert stats["symmetry"]["hits"] == 5

    def test_hit_is_certified_on_query_points(self):
        points = named_pattern("cube")
        Configuration(points).symmetry
        twin_points = _congruent_copy(points, 7)
        twin = Configuration(twin_points)
        group = twin.symmetry.group
        assert group.spec == Configuration(points).symmetry.group.spec
        rel = np.asarray(twin_points) - twin.center
        for element in group.elements:
            images = rel @ np.asarray(element).T
            for image in images:
                assert np.linalg.norm(rel - image, axis=1).min() < 1e-5

    def test_distinct_classes_get_distinct_entries(self):
        Configuration(named_pattern("cube")).symmetry
        Configuration(named_pattern("square_antiprism")).symmetry
        stats = perf.cache_stats()
        assert stats["symmetry"]["misses"] == 2
        assert stats["symmetry"]["hits"] == 0

    def test_collinear_and_degenerate_bypass(self):
        line = [np.array([0.0, 0.0, float(h)]) for h in (-1, 0, 1)]
        stack = [np.ones(3)] * 4
        assert Configuration(line).symmetry.kind == "collinear"
        assert Configuration(stack).symmetry.kind == "degenerate"
        stats = perf.cache_stats()
        assert stats["symmetry"]["bypass"] == 2
        assert stats["symmetry"]["misses"] == 0

    def test_disable_turns_cache_off(self):
        perf.set_enabled(False)
        points = named_pattern("cube")
        Configuration(points).symmetry
        Configuration(points).symmetry
        stats = perf.cache_stats()
        assert not stats["enabled"]
        assert stats["symmetry"]["hits"] == 0
        assert stats["symmetry"]["misses"] == 0

    def test_clear_resets_entries_and_counters(self):
        Configuration(named_pattern("cube")).symmetry
        perf.clear_caches()
        stats = perf.cache_stats()
        assert stats["symmetry"] == {"hits": 0, "misses": 0, "bypass": 0,
                                     "evictions": 0, "classes": 0}


class TestSymmetricityCache:
    def test_witnesses_are_conjugated_per_query(self):
        points = named_pattern("icosahedron")
        rho = symmetricity(Configuration(points))
        twin_points = _congruent_copy(points, 3)
        twin = Configuration(twin_points)
        rho_twin = symmetricity(twin)
        assert rho_twin.specs == rho.specs
        assert rho_twin.maximal == rho.maximal
        assert perf.cache_stats()["symmetricity"]["hits"] == 1
        # A served witness must be made of symmetries of the twin.
        spec = max(rho_twin.specs)
        witness = rho_twin.witness(spec)
        gamma = twin.symmetry.group
        for element in witness.elements:
            assert gamma.contains_element(element)

    def test_subgroup_enumeration_memoized(self):
        from repro.groups.subgroups import enumerate_concrete_subgroups

        gamma = Configuration(named_pattern("cube")).symmetry.group
        first = enumerate_concrete_subgroups(gamma)
        second = enumerate_concrete_subgroups(gamma)
        assert len(first) == len(second)
        stats = perf.cache_stats()["subgroups"]
        assert stats["misses"] == 1
        assert stats["hits"] == 1


class TestSchedulerIntegration:
    def test_full_run_detects_once_per_class_per_round(self):
        """Acceptance check: a complete FSYNC formation run computes
        ``γ(P)`` at most once per congruence class per round.  The
        robots' per-observation work is served by the *indexed round
        cache* (their whole Compute phase is hoisted), so the symmetry
        cache sees only the once-per-class detections while the round
        cache shows one miss plus ``n - 1`` certified hits per class."""
        n = 8
        rng = np.random.default_rng(11)
        initial = [rng.normal(size=3) for _ in range(n)]
        target = polyhedra.regular_polygon_pattern(n)
        frames = random_frames(n, rng)
        scheduler = FsyncScheduler(
            make_pattern_formation_algorithm(target), frames, target=target)
        result = scheduler.run(
            initial, stop_condition=lambda c: c.is_similar_to(target),
            max_rounds=30)
        assert result.reached
        # Per round the trace config plus n robot observations are all
        # congruent; distinct classes only appear when the swarm moves.
        classes_touched = result.rounds + 1
        sym = result.cache_stats["symmetry"]
        assert sym["misses"] <= classes_touched
        rnd = result.cache_stats["round"]
        assert rnd["misses"] <= classes_touched
        assert rnd["hits"] >= n - 1  # robots share the round's Compute

    def test_run_stats_are_per_run_deltas(self):
        points = named_pattern("cube")
        Configuration(points).symmetry  # pollute global counters
        n = 8
        rng = np.random.default_rng(5)
        target = polyhedra.regular_polygon_pattern(n)
        frames = random_frames(n, rng)
        scheduler = FsyncScheduler(
            make_pattern_formation_algorithm(target), frames, target=target)
        before = perf.cache_stats()
        result = scheduler.run(
            [rng.normal(size=3) for _ in range(n)],
            stop_condition=lambda c: c.is_similar_to(target),
            max_rounds=30)
        after = perf.cache_stats()
        for cache in ("symmetry", "symmetricity"):
            for counter in ("hits", "misses"):
                assert result.cache_stats[cache][counter] == \
                    after[cache][counter] - before[cache][counter]
