"""Behavior of the congruence caches (:mod:`repro.perf`)."""

import numpy as np
import pytest

from repro import perf
from repro.core.configuration import Configuration
from repro.core.symmetricity import symmetricity
from repro.geometry.rotations import rotation_about_axis
from repro.patterns.library import named_pattern
from repro.patterns import polyhedra
from repro.robots.adversary import random_frames
from repro.robots.algorithms.pattern_formation import (
    make_pattern_formation_algorithm,
)
from repro.robots.scheduler import FsyncScheduler


@pytest.fixture(autouse=True)
def fresh_caches():
    perf.clear_caches()
    perf.set_enabled(True)
    yield
    perf.set_enabled(True)
    perf.clear_caches()


def _congruent_copy(points, seed: int):
    rng = np.random.default_rng(seed)
    rot = rotation_about_axis(rng.normal(size=3), float(rng.uniform(0, 3)))
    scale = float(rng.uniform(0.5, 4.0))
    shift = rng.normal(size=3)
    return [rot @ (scale * np.asarray(p)) + shift for p in points]


class TestSymmetryCache:
    def test_congruent_queries_share_one_detection(self):
        points = named_pattern("icosahedron")
        Configuration(points).symmetry
        for seed in range(5):
            Configuration(_congruent_copy(points, seed)).symmetry
        stats = perf.cache_stats()
        assert stats["symmetry"]["misses"] == 1
        assert stats["symmetry"]["hits"] == 5

    def test_hit_is_certified_on_query_points(self):
        points = named_pattern("cube")
        Configuration(points).symmetry
        twin_points = _congruent_copy(points, 7)
        twin = Configuration(twin_points)
        group = twin.symmetry.group
        assert group.spec == Configuration(points).symmetry.group.spec
        rel = np.asarray(twin_points) - twin.center
        for element in group.elements:
            images = rel @ np.asarray(element).T
            for image in images:
                assert np.linalg.norm(rel - image, axis=1).min() < 1e-5

    def test_distinct_classes_get_distinct_entries(self):
        Configuration(named_pattern("cube")).symmetry
        Configuration(named_pattern("square_antiprism")).symmetry
        stats = perf.cache_stats()
        assert stats["symmetry"]["misses"] == 2
        assert stats["symmetry"]["hits"] == 0

    def test_collinear_and_degenerate_bypass(self):
        line = [np.array([0.0, 0.0, float(h)]) for h in (-1, 0, 1)]
        stack = [np.ones(3)] * 4
        assert Configuration(line).symmetry.kind == "collinear"
        assert Configuration(stack).symmetry.kind == "degenerate"
        stats = perf.cache_stats()
        assert stats["symmetry"]["bypass"] == 2
        assert stats["symmetry"]["misses"] == 0

    def test_disable_turns_cache_off(self):
        perf.set_enabled(False)
        points = named_pattern("cube")
        Configuration(points).symmetry
        Configuration(points).symmetry
        stats = perf.cache_stats()
        assert not stats["enabled"]
        assert stats["symmetry"]["hits"] == 0
        assert stats["symmetry"]["misses"] == 0

    def test_clear_resets_entries_and_counters(self):
        Configuration(named_pattern("cube")).symmetry
        perf.clear_caches()
        stats = perf.cache_stats()
        assert stats["symmetry"] == {"hits": 0, "misses": 0, "bypass": 0,
                                     "evictions": 0, "incremental_hits": 0,
                                     "incremental_fallbacks": 0, "classes": 0}


class TestSymmetricityCache:
    def test_witnesses_are_conjugated_per_query(self):
        points = named_pattern("icosahedron")
        rho = symmetricity(Configuration(points))
        twin_points = _congruent_copy(points, 3)
        twin = Configuration(twin_points)
        rho_twin = symmetricity(twin)
        assert rho_twin.specs == rho.specs
        assert rho_twin.maximal == rho.maximal
        assert perf.cache_stats()["symmetricity"]["hits"] == 1
        # A served witness must be made of symmetries of the twin.
        spec = max(rho_twin.specs)
        witness = rho_twin.witness(spec)
        gamma = twin.symmetry.group
        for element in witness.elements:
            assert gamma.contains_element(element)

    def test_subgroup_enumeration_memoized(self):
        from repro.groups.subgroups import enumerate_concrete_subgroups

        gamma = Configuration(named_pattern("cube")).symmetry.group
        first = enumerate_concrete_subgroups(gamma)
        second = enumerate_concrete_subgroups(gamma)
        assert len(first) == len(second)
        stats = perf.cache_stats()["subgroups"]
        assert stats["misses"] == 1
        assert stats["hits"] == 1


class TestSchedulerIntegration:
    @pytest.mark.parametrize("batched", [False, True])
    def test_full_run_detects_once_per_class_per_round(self, batched):
        """Acceptance check: a complete FSYNC formation run computes
        ``γ(P)`` at most once per congruence class per round, on either
        Compute engine.  The per-robot reference engine serves each
        robot's Compute through the *indexed round cache* — one miss
        plus ``n - 1`` certified hits per class — while the batched
        engine computes the round once in the world frame, so the
        round cache sees at most one query per class and no per-robot
        hits."""
        n = 8
        rng = np.random.default_rng(11)
        initial = [rng.normal(size=3) for _ in range(n)]
        target = polyhedra.regular_polygon_pattern(n)
        frames = random_frames(n, rng)
        scheduler = FsyncScheduler(
            make_pattern_formation_algorithm(target), frames, target=target,
            batched=batched)
        result = scheduler.run(
            initial, stop_condition=lambda c: c.is_similar_to(target),
            max_rounds=30)
        assert result.reached
        # Per round the trace config plus n robot observations are all
        # congruent; distinct classes only appear when the swarm moves.
        classes_touched = result.rounds + 1
        sym = result.cache_stats["symmetry"]
        assert sym["misses"] <= classes_touched
        rnd = result.cache_stats["round"]
        assert rnd["misses"] <= classes_touched
        if batched:
            # One world-frame Compute per round: no per-robot traffic.
            assert rnd["hits"] + rnd["misses"] <= classes_touched
        else:
            assert rnd["hits"] >= n - 1  # robots share the round's Compute

    def test_run_stats_are_per_run_deltas(self):
        points = named_pattern("cube")
        Configuration(points).symmetry  # pollute global counters
        n = 8
        rng = np.random.default_rng(5)
        target = polyhedra.regular_polygon_pattern(n)
        frames = random_frames(n, rng)
        scheduler = FsyncScheduler(
            make_pattern_formation_algorithm(target), frames, target=target)
        before = perf.cache_stats()
        result = scheduler.run(
            [rng.normal(size=3) for _ in range(n)],
            stop_condition=lambda c: c.is_similar_to(target),
            max_rounds=30)
        after = perf.cache_stats()
        for cache in ("symmetry", "symmetricity"):
            for counter in ("hits", "misses"):
                assert result.cache_stats[cache][counter] == \
                    after[cache][counter] - before[cache][counter]


class TestIncrementalSymmetry:
    """``prime_symmetry``: conjugate-and-verify across rounds."""

    def _cube_configs(self, contraction=0.5):
        points = named_pattern("cube")
        prev = Configuration(points)
        c = prev.center
        new_points = [c + contraction * (np.asarray(p) - c) for p in points]
        return prev, Configuration(new_points)

    def test_coherent_contraction_primes(self):
        prev, new = self._cube_configs()
        prev.symmetry  # certify the previous round's group
        assert perf.prime_symmetry(prev, new) is True
        stats = perf.cache_stats()["symmetry"]
        assert stats["incremental_hits"] == 1
        assert stats["incremental_fallbacks"] == 0
        # The primed report is the full cube group, and certified:
        # every element maps the new configuration onto itself.
        report = new.symmetry
        assert report.group.spec == prev.symmetry.group.spec
        rel = new.as_array() - new.center
        for element in report.group.elements:
            images = rel @ np.asarray(element).T
            for image in images:
                assert np.linalg.norm(rel - image, axis=1).min() < 1e-9

    def test_primed_report_seeds_the_class(self):
        prev, new = self._cube_configs()
        prev.symmetry
        assert perf.prime_symmetry(prev, new)
        before = perf.cache_stats()["symmetry"]
        # Congruent queries of the new class (a robot's local view)
        # must hit the seeded entry, not re-detect.
        Configuration(_congruent_copy(list(new.points), 13)).symmetry
        after = perf.cache_stats()["symmetry"]
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_incoherent_displacement_falls_back(self):
        points = [np.asarray(p, dtype=float)
                  for p in named_pattern("cube")]
        prev = Configuration(points)
        prev.symmetry
        # Same radii (shells match bijectively) but one robot moved
        # tangentially: no common rotation explains the round, so the
        # Kabsch residual trips the coherence guard.
        moved = [p.copy() for p in points]
        radius = float(np.linalg.norm(moved[0] - prev.center))
        tangent = np.cross(moved[0] - prev.center, [1.0, 0.3, 0.2])
        perturbed = (moved[0] - prev.center) + 0.3 * tangent
        moved[0] = prev.center + radius * perturbed / np.linalg.norm(perturbed)
        new = Configuration(moved)
        assert perf.prime_symmetry(prev, new) is False
        stats = perf.cache_stats()["symmetry"]
        assert stats["incremental_fallbacks"] == 1
        assert stats["incremental_hits"] == 0
        # Full detection still runs and is correct: the perturbed cube
        # has lost its symmetry.
        report = new.symmetry
        assert report.kind == "finite"
        assert report.group.order == 1

    def test_disabled_toggle_skips_priming(self):
        prev, new = self._cube_configs()
        prev.symmetry
        assert perf.incremental_enabled()
        perf.set_incremental(False)
        try:
            assert not perf.incremental_enabled()
            assert perf.prime_symmetry(prev, new) is False
            stats = perf.cache_stats()["symmetry"]
            assert stats["incremental_hits"] == 0
            assert stats["incremental_fallbacks"] == 0
        finally:
            perf.set_incremental(True)

    def test_trivial_group_not_primed(self):
        rng = np.random.default_rng(3)
        points = [rng.normal(size=3) for _ in range(6)]
        prev = Configuration(points)
        assert prev.symmetry.group.order == 1
        new = Configuration([0.5 * p for p in points])
        assert perf.prime_symmetry(prev, new) is False
        stats = perf.cache_stats()["symmetry"]
        # Nothing to conjugate: not even counted as a fallback.
        assert stats["incremental_fallbacks"] == 0

    def test_contracting_run_primes_every_round(self):
        """End-to-end: a contraction toward the center keeps the
        configuration's class coherent round over round, so after the
        first full detection every round is primed."""
        from repro.robots.adversary import identity_frames

        n = 8
        points = [np.asarray(p, dtype=float)
                  for p in named_pattern("cube")]

        def contract(observation):
            views = np.asarray(observation.points)
            center = views.mean(axis=0)
            me = views[observation.self_index]
            return me + 0.25 * (center - me)

        scheduler = FsyncScheduler(contract, identity_frames(n))
        # The stop condition consults γ(P) every round, as the real
        # formation algorithms do; only round 0 pays a full detection.
        result = scheduler.run(
            points,
            stop_condition=lambda c: (c.symmetry.group.order > 0
                                      and float(c.radius) < 0.2),
            max_rounds=30)
        assert result.reached
        sym = result.cache_stats["symmetry"]
        assert sym["incremental_hits"] == result.rounds
        assert sym["incremental_fallbacks"] == 0
        assert sym["misses"] == 1
