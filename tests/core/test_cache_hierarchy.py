"""The L2 shared-memory and L3 on-disk levels of the cache hierarchy.

The congruence (L1) caches have their own suite
(``test_congruence_cache.py`` / ``test_round_cache.py``); this one
covers the cross-process store, the persistent store, the uniform
counter snapshot, and the CLI surface over them.
"""

import multiprocessing

import numpy as np
import pytest

from repro import cli, perf
from repro.core.configuration import Configuration
from repro.groups.catalog import icosahedral_group, octahedral_group
from repro.groups.subgroups import enumerate_concrete_subgroups
from repro.patterns.library import named_pattern
from repro.perf import disk, shared
from repro.perf.blocks import packed_arrays
from repro.perf.parallel import parallel_map
from repro.perf.shared import SharedStore, l2_stats
from repro.perf.stats import exact_digest, group_digest, hierarchy_stats


@pytest.fixture(autouse=True)
def isolated_stores(tmp_path):
    perf.clear_caches()
    disk.configure(root=tmp_path / "l3")
    yield
    disk.configure()  # back to the environment-driven default
    perf.clear_caches()


class TestExactDigest:
    def test_equal_inputs_equal_digest(self):
        a = np.arange(12.0).reshape(4, 3)
        assert exact_digest(b"k", a, 0.5) == exact_digest(b"k", a.copy(), 0.5)

    def test_dtype_and_shape_are_part_of_the_key(self):
        a = np.arange(12.0)
        assert exact_digest(a) != exact_digest(a.astype(np.float32))
        assert exact_digest(a) != exact_digest(a.reshape(4, 3))

    def test_float_keys_are_bit_exact(self):
        assert exact_digest(0.1 + 0.2) != exact_digest(0.3)

    def test_group_digest_separates_conjugated_copies(self):
        group = octahedral_group()
        rot = Configuration(named_pattern("cube"))  # any rotation source
        tilted = group.transformed(
            np.array([[0.0, -1.0, 0.0], [1.0, 0.0, 0.0], [0.0, 0.0, 1.0]]))
        assert group_digest(group) != group_digest(tilted)
        del rot


class TestSharedStore:
    def test_get_or_compute_hits_after_publish(self):
        store = SharedStore.create(multiprocessing.Lock())
        try:
            calls = []

            def compute():
                calls.append(1)
                return {"answer": 42}

            first = store.get_or_compute("unit", b"key", compute)
            second = store.get_or_compute("unit", b"key", compute)
            assert first == second == {"answer": 42}
            assert len(calls) == 1
            assert store.local["hits"] == 1
            assert store.local["misses"] == 1
            assert store.local["publishes"] == 1
        finally:
            store.close()
            store.unlink()

    def test_full_segment_rejects_but_still_computes(self):
        store = SharedStore.create(multiprocessing.Lock(), capacity=8192)
        try:
            big = np.zeros(10_000)  # pickles past the 8 KiB capacity
            value = store.get_or_compute("unit", b"big", lambda: big)
            assert np.array_equal(value, big)
            assert store.local["rejected"] == 1
            # And the key stays a miss — computed again, never corrupted.
            again = store.get_or_compute("unit", b"big", lambda: big + 0)
            assert np.array_equal(again, big)
        finally:
            store.close()
            store.unlink()

    def test_values_roundtrip_bit_exact(self):
        store = SharedStore.create(multiprocessing.Lock())
        try:
            value = (np.random.default_rng(0).normal(size=(17, 3)),
                     "label", 3)
            stored = store.get_or_compute("unit", b"v", lambda: value)
            served = store.get_or_compute(
                "unit", b"v", lambda: pytest.fail("must be served"))
            assert np.array_equal(served[0], value[0])
            assert served[1:] == value[1:]
            del stored
        finally:
            store.close()
            store.unlink()


def _detect_spec(ref):
    config = Configuration([np.array(row) for row in ref.load()])
    return str(config.rotation_group.spec)


class TestL2AcrossWorkers:
    def test_cross_worker_hits_in_a_four_worker_run(self):
        """Identical world configurations in different workers must be
        served from the shared store — the counters prove the sharing
        actually happened (not just that results agree)."""
        before = l2_stats()
        cube = np.asarray(named_pattern("cube"))
        with packed_arrays([cube] * 12) as refs:
            specs = parallel_map(_detect_spec, list(refs), jobs=4)
        assert specs == ["O"] * 12
        after = l2_stats()
        assert after["remote_hits"] - before["remote_hits"] > 0
        assert after["publishes"] - before["publishes"] >= 1


class TestDiskCache:
    def test_array_roundtrip_is_bit_exact(self):
        payload = np.random.default_rng(3).normal(size=(8, 3))
        disk.disk_put("unit", b"\x01" * 16, arrays={"data": payload})
        meta, arrays = disk.disk_get("unit", b"\x01" * 16)
        assert meta is None
        assert arrays["data"].tobytes() == payload.tobytes()

    def test_object_roundtrip(self):
        obj = {"specs": ["C2", "C3"], "points": np.eye(3)}
        disk.disk_put_object("unit", b"\x02" * 16, obj)
        back = disk.disk_get_object("unit", b"\x02" * 16)
        assert back["specs"] == obj["specs"]
        assert np.array_equal(back["points"], obj["points"])

    def test_info_and_clear(self):
        disk.disk_put("unit", b"\x03" * 16, arrays={"x": np.zeros(4)})
        store = disk.disk_cache()
        info = store.info()
        assert info["entries"] == 1
        assert info["kinds"]["unit"]["entries"] == 1
        assert store.clear() == 1
        assert store.info()["entries"] == 0

    def test_stale_version_invalidation(self, tmp_path):
        root = tmp_path / "versioned"
        disk.configure(root=root, version="1.0.0")
        disk.disk_put("unit", b"\x04" * 16, arrays={"x": np.ones(3)})
        assert disk.disk_get("unit", b"\x04" * 16) is not None

        invalidations_before = disk.l3_stats()["invalidations"]
        disk.configure(root=root, version="2.0.0")
        assert disk.disk_get("unit", b"\x04" * 16) is None
        assert disk.l3_stats()["invalidations"] == invalidations_before + 1
        # The stale payload file is gone, not just unindexed.
        assert not list(root.glob("unit-*.npz"))

    def test_disabled_level_is_a_no_op(self):
        disk.configure(enabled=False)
        assert disk.disk_cache() is None
        disk.disk_put("unit", b"\x05" * 16, arrays={"x": np.zeros(1)})
        assert disk.disk_get("unit", b"\x05" * 16) is None


class TestCatalogPersistence:
    def test_second_process_epoch_rebuilds_nothing(self):
        """Cold run persists the catalog stack and the subgroup
        lattice; a warm epoch (fresh L1, same L3 root) must serve both
        with zero catalog/lattice misses."""
        group = icosahedral_group()
        lattice = enumerate_concrete_subgroups(group)
        assert len(lattice) == 59

        perf.clear_caches()  # a "new process" as far as L1 knows
        kinds_before = {
            kind: dict(counters) for kind, counters
            in disk.l3_stats()["kinds"].items()
        }
        warm_group = icosahedral_group()
        warm_lattice = enumerate_concrete_subgroups(warm_group)
        kinds_after = disk.l3_stats()["kinds"]

        assert warm_group.order == 60
        assert len(warm_lattice) == 59
        for kind in ("catalog", "lattice"):
            assert (kinds_after[kind]["misses"]
                    == kinds_before[kind]["misses"]), kind
            assert (kinds_after[kind]["hits"]
                    > kinds_before[kind]["hits"]), kind

    def test_lattice_roundtrip_preserves_subgroup_order(self):
        group = icosahedral_group()
        first = [sub.spec for sub in enumerate_concrete_subgroups(group)]
        perf.clear_caches()
        second = [sub.spec for sub in enumerate_concrete_subgroups(
            icosahedral_group())]
        assert first == second


class TestCliSurface:
    def test_second_cli_invocation_recomputes_nothing(self, capsys):
        assert cli.main(["patterns"]) == 0
        first = capsys.readouterr().out
        misses_before = disk.l3_stats()["kinds"]["pattern"]["misses"]
        perf.clear_caches()
        assert cli.main(["patterns"]) == 0
        second = capsys.readouterr().out
        assert second == first
        kinds = disk.l3_stats()["kinds"]
        assert kinds["pattern"]["misses"] == misses_before

    def test_cache_info_and_clear(self, capsys):
        disk.disk_put("unit", b"\x06" * 16, arrays={"x": np.zeros(2)})
        assert cli.main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "entries: 1" in out
        assert cli.main(["cache", "clear"]) == 0
        out = capsys.readouterr().out
        assert "removed 1 entries" in out
        assert disk.disk_cache().info()["entries"] == 0

    def test_experiment_cache_stats_flag(self, capsys):
        assert cli.main(["experiment", "theorem11", "--jobs", "2",
                         "--cache-stats"]) == 0
        captured = capsys.readouterr()
        assert "cache hierarchy:" in captured.err
        assert "cache.l1." in captured.err
        assert "cache.l2." in captured.err
        assert "cache.l3." in captured.err


class TestHierarchySnapshot:
    def test_snapshot_has_uniform_counters(self):
        Configuration(named_pattern("cube")).symmetry
        stats = hierarchy_stats()
        for level in ("l1", "l2", "l3"):
            for field in ("hits", "misses", "bytes"):
                assert field in stats[level], (level, field)
        assert stats["l1"]["misses"] >= 1
        assert set(stats["l1"]["caches"]) == {
            "symmetry", "symmetricity", "subgroups", "round"}

    def test_eviction_counters_count(self, monkeypatch):
        from repro.perf import cache as cache_mod
        from repro.perf import round as round_mod

        monkeypatch.setattr(cache_mod, "_MAX_CLASSES", 2)
        monkeypatch.setattr(round_mod, "_MAX_ENTRIES", 2)
        for name in ("triangle", "square", "octagon", "cube"):
            Configuration(named_pattern(name)).symmetry
            from repro.perf.round import round_view

            round_view(Configuration(named_pattern(name)))
        stats = perf.cache_stats()
        assert stats["symmetry"]["evictions"] >= 1
        assert stats["round"]["evictions"] >= 1

    def test_l2_counters_survive_the_run(self):
        """`accumulate_run` folds a finished pool's counters into the
        cumulative snapshot, so `--cache-stats` sees closed stores."""
        before = l2_stats()["runs"]
        parallel_map(_detect_spec_noop, [1, 2, 3, 4], jobs=2)
        assert l2_stats()["runs"] == before + 1


def _detect_spec_noop(x):
    return x
