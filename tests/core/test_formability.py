"""Tests for the Theorem 1.1 / 7.1 formability predicate."""

import numpy as np
import pytest

from repro.core.configuration import Configuration
from repro.core.formability import formability_report, is_formable
from repro.errors import ConfigurationError
from repro.patterns import polyhedra
from repro.patterns.library import compose_shells, named_pattern
from tests.conftest import generic_cloud


def formable(p, f) -> bool:
    return is_formable(Configuration(p), Configuration(f))


class TestPaperExamples:
    def test_cube_to_octagon(self, cube, octagon):
        # Figure 1(b): rho(cube) = {D4} and the octagon admits D4.
        assert formable(cube, octagon)

    def test_cube_to_square_antiprism(self, cube, square_antiprism):
        assert formable(cube, square_antiprism)

    def test_cube_to_itself(self, cube):
        assert formable(cube, cube)

    def test_octagon_to_cube_fails(self, cube, octagon):
        # rho(octagon) contains C8, which no 8-point 3D pattern with
        # gamma = O admits.
        assert not formable(octagon, cube)

    def test_anything_to_generic_fails_if_symmetric(self, cube):
        assert not formable(cube, generic_cloud(8, seed=1))

    def test_generic_to_anything(self, cube, octagon):
        gen = generic_cloud(8, seed=2)
        assert formable(gen, cube)
        assert formable(gen, octagon)

    def test_icosahedron_cuboctahedron_incomparable(self):
        ico = named_pattern("icosahedron")
        cuboct = named_pattern("cuboctahedron")
        assert not formable(ico, cuboct)
        assert not formable(cuboct, ico)

    def test_octahedron_to_hexagon(self):
        assert formable(named_pattern("octahedron"),
                        polyhedra.regular_polygon_pattern(6))

    def test_composite_to_hexadecagon(self):
        # rho(cube+octahedron) = {C2}; a regular 14-gon has C14 >= C2.
        pts = compose_shells(named_pattern("octahedron"),
                             named_pattern("cube"))
        assert formable(pts, polyhedra.regular_polygon_pattern(14))


class TestPointFormation:
    def test_point_always_formable(self):
        # rho(F) for the point of multiplicity n contains every group
        # whose order divides n, and every G in rho(P) has free orbits
        # so |G| divides n: point formation is always solvable.
        for name in ["cube", "icosahedron", "octagon", "cuboctahedron"]:
            pts = named_pattern(name)
            target = [np.zeros(3)] * len(pts)
            assert formable(pts, target)


class TestMultiplicityTargets:
    def test_truncatedcube_like_to_tripled_cube(self, cube):
        # Paper Section 7 example: 24 robots forming a free O-orbit can
        # gather in threes on the cube vertices.
        from repro.groups.catalog import octahedral_group
        from repro.patterns.orbits import transitive_set

        initial = transitive_set(octahedral_group(), mu=1)
        target = cube * 3
        assert formable(initial, target)

    def test_doubled_cube_blocked(self, cube):
        from repro.groups.catalog import octahedral_group
        from repro.patterns.orbits import transitive_set

        # 16 robots forming a free O-orbit do not exist (|O| = 24), so
        # use a free D8 orbit instead; its C8 is not in rho(cube*2).
        initial = polyhedra.antiprism(8)
        target = cube * 2
        assert not formable(initial, target)


class TestReports:
    def test_report_contents_formable(self, cube, octagon):
        report = formability_report(Configuration(cube),
                                    Configuration(octagon))
        assert report.formable
        assert report.blocking == []
        assert "Formable" in report.explain()

    def test_report_contents_unformable(self, cube, octagon):
        report = formability_report(Configuration(octagon),
                                    Configuration(cube))
        assert not report.formable
        assert report.blocking
        assert "Unformable" in report.explain()

    def test_size_mismatch(self, cube, octagon):
        with pytest.raises(ConfigurationError):
            formability_report(Configuration(cube),
                               Configuration(octagon[:-1]))

    def test_initial_multiplicity_rejected(self, cube):
        with pytest.raises(ConfigurationError):
            formability_report(Configuration(cube + [cube[0]]),
                               Configuration(cube + [cube[1]]))


class TestReflexivityAndMonotonicity:
    @pytest.mark.parametrize("name", [
        "tetrahedron", "cube", "octahedron", "octagon",
        "square_antiprism", "pentagonal_prism"])
    def test_every_pattern_formable_from_itself(self, name):
        pts = named_pattern(name)
        assert formable(pts, pts)

    def test_formability_is_transitive_on_sampled_chain(self):
        # generic -> cube -> octagon is consistent with
        # generic -> octagon.
        gen = generic_cloud(8, seed=9)
        cube = named_pattern("cube")
        octagon = named_pattern("octagon")
        assert formable(gen, cube)
        assert formable(cube, octagon)
        assert formable(gen, octagon)
