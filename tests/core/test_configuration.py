"""Tests for the Configuration type."""

import numpy as np
import pytest

from repro.core.configuration import Configuration
from repro.errors import ConfigurationError
from repro.geometry.transforms import Similarity
from tests.conftest import generic_cloud


class TestConstruction:
    def test_basic(self, cube):
        config = Configuration(cube)
        assert config.n == 8
        assert len(config) == 8

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration([])

    def test_wrong_dimension_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration([[1.0, 2.0]])

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            Configuration([[np.nan, 0, 0]])

    def test_points_are_read_only(self, cube):
        config = Configuration(cube)
        with pytest.raises(ValueError):
            config.points[0][0] = 99.0

    def test_source_mutation_does_not_leak(self):
        src = [np.zeros(3), np.ones(3), np.array([2.0, 0, 0])]
        config = Configuration(src)
        src[0][0] = 42.0
        assert config.points[0][0] == 0.0


class TestDerivedGeometry:
    def test_center_and_radius(self, cube):
        config = Configuration(cube)
        assert np.allclose(config.center, [0, 0, 0], atol=1e-9)
        assert config.radius == pytest.approx(1.0)

    def test_inner_ball(self):
        pts = [[1, 0, 0], [-1, 0, 0], [0, 2, 0], [0, -2, 0]]
        config = Configuration(pts)
        assert config.inner_ball.radius == pytest.approx(1.0)

    def test_symmetry_cached(self, cube):
        config = Configuration(cube)
        assert config.symmetry is config.symmetry

    def test_rotation_group(self, cube):
        assert str(Configuration(cube).rotation_group.spec) == "O"

    def test_relative_points(self, cube):
        config = Configuration([p + np.array([1.0, 2.0, 3.0])
                                for p in cube])
        rel = config.relative_points()
        assert np.allclose(np.mean(rel, axis=0), 0.0, atol=1e-9)


class TestValidation:
    def test_require_initial_accepts_valid(self, cube):
        Configuration(cube).require_initial()

    def test_require_initial_rejects_small(self):
        with pytest.raises(ConfigurationError):
            Configuration([[0, 0, 0], [1, 0, 0]]).require_initial()

    def test_require_initial_rejects_multiplicity(self, cube):
        with pytest.raises(ConfigurationError):
            Configuration(cube + [cube[0]]).require_initial()

    def test_has_multiplicity(self, cube):
        assert not Configuration(cube).has_multiplicity
        assert Configuration(cube + [cube[0]]).has_multiplicity


class TestRelations:
    def test_similarity(self, rng, cube):
        config = Configuration(cube)
        sim = Similarity.random(rng)
        assert config.is_similar_to(config.transformed(sim))

    def test_similarity_with_raw_points(self, cube):
        assert Configuration(cube).is_similar_to(cube)

    def test_not_similar(self, cube, octagon):
        assert not Configuration(cube).is_similar_to(octagon)

    def test_translated_to_origin(self):
        pts = generic_cloud(5, seed=2)
        moved = Configuration([p + 7.0 for p in pts]).translated_to_origin()
        assert np.allclose(moved.center, [0, 0, 0], atol=1e-8)
