"""Behavior of the indexed round cache (:mod:`repro.perf.round`)."""

import numpy as np
import pytest

from repro import perf
from repro.core.configuration import Configuration
from repro.geometry.rotations import rotation_about_axis
from repro.patterns.library import named_pattern
from repro.perf import cached_equivariant_points, cached_invariant, round_view


@pytest.fixture(autouse=True)
def fresh_caches():
    perf.clear_caches()
    perf.set_enabled(True)
    yield
    perf.set_enabled(True)
    perf.clear_caches()


def _congruent_copy(points, seed: int):
    rng = np.random.default_rng(seed)
    rot = rotation_about_axis(rng.normal(size=3), float(rng.uniform(0, 3)))
    scale = float(rng.uniform(0.5, 4.0))
    shift = rng.normal(size=3)
    return [rot @ (scale * np.asarray(p)) + shift for p in points]


def _cloud(seed: int = 0, n: int = 9):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=3) for _ in range(n)]


class TestRoundView:
    def test_congruent_copies_share_one_entry(self):
        points = _cloud()
        first = round_view(Configuration(points))
        assert first is not None
        for seed in range(5):
            view = round_view(Configuration(_congruent_copy(points, seed)))
            assert view.entry is first.entry
        stats = perf.cache_stats()["round"]
        assert stats["misses"] == 1
        assert stats["hits"] == 5

    def test_alignment_is_certified_per_index(self):
        """The view's similarity must map the canonical points onto the
        query points robot-by-robot — not merely as multisets."""
        points = _cloud(3)
        round_view(Configuration(points))
        twin_points = _congruent_copy(points, 11)
        twin = Configuration(twin_points)
        view = round_view(twin)
        recovered = view.to_query(view.entry.rel_unit)
        for i, p in enumerate(twin_points):
            assert float(np.linalg.norm(recovered[i] - p)) <= 1e-5

    def test_symmetric_configurations_keep_robot_identity(self):
        """Regression guard for the coset ambiguity: on a symmetric
        configuration a multiset alignment could map a robot onto any
        orbit sibling; the indexed Kabsch alignment must not."""
        points = named_pattern("cube")
        round_view(Configuration(points))
        twin_points = _congruent_copy(points, 5)
        view = round_view(Configuration(twin_points))
        recovered = view.to_query(view.entry.rel_unit)
        for i, p in enumerate(twin_points):
            assert float(np.linalg.norm(recovered[i] - np.asarray(p))) \
                <= 1e-5

    def test_distinct_classes_get_distinct_entries(self):
        a = round_view(Configuration(_cloud(0)))
        b = round_view(Configuration(_cloud(1)))
        assert a.entry is not b.entry
        assert perf.cache_stats()["round"]["misses"] == 2

    def test_disabled_cache_returns_none(self):
        perf.set_enabled(False)
        assert round_view(Configuration(_cloud())) is None

    def test_degenerate_configuration_bypasses(self):
        stacked = Configuration([np.ones(3)] * 4)
        assert round_view(stacked) is None
        assert perf.cache_stats()["round"]["bypass"] == 1


class TestPayloads:
    def test_invariant_payload_computed_once(self):
        points = _cloud()
        calls = []

        def compute():
            calls.append(1)
            return ("payload",)

        view = round_view(Configuration(points))
        assert cached_invariant(view, ("k",), compute) == ("payload",)
        twin = round_view(Configuration(_congruent_copy(points, 2)))
        assert cached_invariant(twin, ("k",), compute) == ("payload",)
        assert len(calls) == 1

    def test_equivariant_points_are_conjugated(self):
        """A destination stored by one observer must come back in a
        congruent observer's own coordinates."""
        points = _cloud()
        config = Configuration(points)
        view = round_view(config)
        # Destinations: every robot heads to the configuration center.
        dest = np.tile(config.center, (config.n, 1))
        served = cached_equivariant_points(view, ("d",), lambda: dest)
        assert np.allclose(served, dest)

        twin_points = _congruent_copy(points, 4)
        twin = Configuration(twin_points)
        twin_view = round_view(twin)
        conjugated = cached_equivariant_points(
            twin_view, ("d",),
            lambda: pytest.fail("hit must not recompute"))
        assert np.allclose(conjugated,
                           np.tile(twin.center, (twin.n, 1)), atol=1e-6)

    def test_compute_errors_are_not_cached(self):
        view = round_view(Configuration(_cloud()))

        def explode():
            raise RuntimeError("no")

        with pytest.raises(RuntimeError):
            cached_invariant(view, ("e",), explode)
        assert cached_invariant(view, ("e",), lambda: 42) == 42
