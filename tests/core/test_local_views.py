"""Tests for local views and the agreed orbit ordering (Theorem 3.1)."""

import numpy as np
import pytest

from repro.core.configuration import Configuration
from repro.core.local_views import local_view, ordered_orbits
from repro.core.decomposition import orbit_decomposition
from repro.geometry.transforms import Similarity
from repro.patterns.library import compose_shells, named_pattern
from tests.conftest import generic_cloud


class TestLocalView:
    def test_same_orbit_same_view(self, cube):
        config = Configuration(cube)
        views = [local_view(config, i) for i in range(8)]
        assert len(set(views)) == 1  # the cube is transitive

    def test_different_orbits_different_views(self):
        pts = compose_shells(named_pattern("octahedron"),
                             named_pattern("cube"))
        config = Configuration(pts)
        views = [local_view(config, i) for i in range(len(pts))]
        assert len(set(views)) == 2

    def test_generic_cloud_all_views_distinct(self):
        pts = generic_cloud(8, seed=21)
        config = Configuration(pts)
        views = [local_view(config, i) for i in range(8)]
        assert len(set(views)) == 8

    def test_view_invariant_under_similarity(self, rng, cube):
        pts = compose_shells(named_pattern("octahedron"),
                             named_pattern("cube"))
        config = Configuration(pts)
        sim = Similarity.random(rng)
        moved = Configuration(sim.apply_all(pts))
        for i in range(len(pts)):
            assert local_view(config, i) == local_view(moved, i)

    def test_center_robot_sentinel(self):
        pts = named_pattern("cube") + [np.zeros(3)]
        config = Configuration(pts)
        center_view = local_view(config, 8)
        other_view = local_view(config, 0)
        assert center_view < other_view

    def test_views_are_comparable_tuples(self, cube):
        config = Configuration(cube)
        view = local_view(config, 0)
        assert isinstance(view, tuple)
        assert view <= view


class TestOrderedOrbits:
    def test_ordering_by_radius(self):
        pts = compose_shells(named_pattern("octahedron"),
                             named_pattern("cube"))
        config = Configuration(pts)
        orbits = ordered_orbits(config, config.rotation_group)
        radii = [float(np.linalg.norm(config.points[o[0]] - config.center))
                 for o in orbits]
        assert radii == sorted(radii)

    def test_property2_first_on_inner_last_on_outer(self):
        pts = compose_shells(named_pattern("tetrahedron"),
                             named_pattern("cube"),
                             named_pattern("octahedron"))
        config = Configuration(pts)
        orbits = ordered_orbits(config, config.rotation_group)
        inner_r = config.inner_ball.radius
        outer_r = config.radius
        first_r = float(np.linalg.norm(
            config.points[orbits[0][0]] - config.center))
        last_r = float(np.linalg.norm(
            config.points[orbits[-1][0]] - config.center))
        assert first_r == pytest.approx(inner_r, rel=1e-6)
        assert last_r == pytest.approx(outer_r, rel=1e-6)

    def test_ordering_invariant_under_similarity(self, rng):
        pts = generic_cloud(7, seed=8)
        config = Configuration(pts)
        orbits_a = ordered_orbits(config, config.rotation_group)
        sim = Similarity.random(rng)
        moved = Configuration(sim.apply_all(pts))
        orbits_b = ordered_orbits(moved, moved.rotation_group)
        assert orbits_a == orbits_b  # indices preserved by apply_all

    def test_accepts_precomputed_orbits(self, cube):
        config = Configuration(cube)
        orbits = orbit_decomposition(config, config.rotation_group)
        assert ordered_orbits(config, config.rotation_group,
                              orbits=orbits) == orbits

    def test_same_radius_orbits_separated_by_views(self):
        # Two squares at the same distance from the center (heights
        # ±0.6) plus an unpaired third square that kills the dihedral
        # flip: two same-radius orbits of C4 that only local views can
        # separate.
        from repro.geometry.polygons import regular_polygon

        pts = regular_polygon(4, radius=0.8, center=(0, 0, 0.6))
        pts += regular_polygon(4, radius=0.8, center=(0, 0, -0.6),
                               phase=0.37)
        pts += regular_polygon(4, radius=0.5, center=(0, 0, 0.3),
                               phase=0.11)
        config = Configuration(pts)
        group = config.rotation_group
        assert str(group.spec) == "C4"
        orbits = ordered_orbits(config, group)
        assert len(orbits) == 3
        radii = [round(float(np.linalg.norm(
            config.points[o[0]] - config.center)), 6) for o in orbits]
        assert radii[-1] == radii[-2]  # the tied pair was separated
