"""Tests for orbit decompositions, foldings, and axis orientation."""

import numpy as np
import pytest

from repro.core.configuration import Configuration
from repro.core.decomposition import (
    is_transitive,
    orbit_decomposition,
    orbit_folding,
    oriented_axis_direction,
    principal_axis_of_d2,
)
from repro.errors import GroupError
from repro.groups.catalog import (
    cyclic_group,
    dihedral_group,
    octahedral_group,
    tetrahedral_group,
)
from repro.patterns import polyhedra
from repro.patterns.library import compose_shells, named_pattern


class TestOrbitDecomposition:
    def test_cube_is_one_orbit_under_o(self, cube):
        config = Configuration(cube)
        orbits = orbit_decomposition(config, config.rotation_group)
        assert len(orbits) == 1
        assert sorted(orbits[0]) == list(range(8))

    def test_composite_two_orbits(self):
        pts = compose_shells(named_pattern("octahedron"),
                             named_pattern("cube"))
        config = Configuration(pts)
        orbits = orbit_decomposition(config, config.rotation_group)
        assert sorted(len(o) for o in orbits) == [6, 8]

    def test_partition_property(self):
        pts = compose_shells(named_pattern("tetrahedron"),
                             named_pattern("cube"),
                             named_pattern("octahedron"))
        config = Configuration(pts)
        orbits = orbit_decomposition(config, config.rotation_group)
        flat = sorted(i for orbit in orbits for i in orbit)
        assert flat == list(range(config.n))

    def test_subgroup_decomposition_refines(self, cube):
        config = Configuration(cube)
        # Under a C4 subgroup the cube splits into two 4-orbits.
        sub = cyclic_group(4, axis=(0, 0, 1))
        orbits = orbit_decomposition(config, sub)
        assert sorted(len(o) for o in orbits) == [4, 4]

    def test_wrong_group_raises(self, cube):
        config = Configuration(cube)
        wrong = cyclic_group(5, axis=(0, 0, 1))
        with pytest.raises(GroupError):
            orbit_decomposition(config, wrong)

    def test_trivial_group_singletons(self, cube):
        config = Configuration(cube)
        orbits = orbit_decomposition(config, cyclic_group(1))
        assert all(len(o) == 1 for o in orbits)


class TestFolding:
    def test_free_orbit_folding_one(self, cube):
        config = Configuration(cube)
        # The cube is U_{O,3}: folding 3 under O.
        orbits = orbit_decomposition(config, config.rotation_group)
        assert orbit_folding(config, config.rotation_group,
                             orbits[0]) == 3

    def test_octahedron_folding_under_o(self):
        pts = named_pattern("octahedron")
        config = Configuration(pts)
        orbits = orbit_decomposition(config, config.rotation_group)
        assert orbit_folding(config, config.rotation_group,
                             orbits[0]) == 4

    def test_octahedron_folding_under_t(self):
        # The same point set is U_{T,2} under the tetrahedral subgroup.
        pts = named_pattern("octahedron")
        config = Configuration(pts)
        orbits = orbit_decomposition(config, tetrahedral_group())
        assert orbit_folding(config, tetrahedral_group(), orbits[0]) == 2


class TestTransitivity:
    @pytest.mark.parametrize("name", [
        "tetrahedron", "cube", "octahedron", "cuboctahedron",
        "icosahedron", "dodecahedron", "icosidodecahedron"])
    def test_goc_polyhedra_transitive(self, name):
        config = Configuration(named_pattern(name))
        assert is_transitive(config, config.rotation_group)

    def test_composite_not_transitive(self):
        pts = compose_shells(named_pattern("octahedron"),
                             named_pattern("cube"))
        config = Configuration(pts)
        assert not is_transitive(config, config.rotation_group)


class TestPrincipalAxisOfD2:
    def test_rectangle_principal(self):
        # A 2x1 rectangle in the xy-plane: gamma = D2; the recognizable
        # principal axis is perpendicular to the rectangle (z).
        pts = [np.array([x, y, 0.0]) for x in (-2, 2) for y in (-1, 1)]
        config = Configuration(pts)
        group = config.rotation_group
        assert str(group.spec) == "D2"
        principal = principal_axis_of_d2(config, group)
        assert principal is not None
        # All three axes are distinguishable; the function must return
        # deterministically the same line on repeated calls.
        again = principal_axis_of_d2(config, group)
        assert np.allclose(np.abs(principal), np.abs(again))

    def test_sphenoid_has_principal(self):
        # Sphenoid from Figure 5: 4 congruent triangles, group D2.
        pts = [np.array([1.0, 0.6, 0.3]), np.array([-1.0, -0.6, 0.3]),
               np.array([1.0, -0.6, -0.3]), np.array([-1.0, 0.6, -0.3])]
        config = Configuration(pts)
        group = config.rotation_group
        assert str(group.spec) == "D2"
        principal_axis_of_d2(config, group)

    def test_requires_d2(self, cube):
        config = Configuration(cube)
        with pytest.raises(GroupError):
            principal_axis_of_d2(config, config.rotation_group)


class TestOrientedAxisDirection:
    def test_pyramid_axis_is_oriented(self):
        pts = polyhedra.pyramid(4)
        config = Configuration(pts)
        group = config.rotation_group
        axis = group.axes[0].direction
        direction = oriented_axis_direction(config, axis, group)
        assert direction is not None
        # The orientation is a function of the geometry: recomputing
        # with the flipped input gives the same answer.
        again = oriented_axis_direction(config, -axis, group)
        assert np.allclose(direction, again)

    def test_prism_principal_unoriented(self):
        pts = polyhedra.prism(5)
        config = Configuration(pts)
        group = config.rotation_group
        principal = group.principal_axis.direction
        assert oriented_axis_direction(config, principal, group) is None

    def test_equivariance(self, rng):
        from repro.geometry.rotations import random_rotation

        pts = polyhedra.pyramid(5)
        config = Configuration(pts)
        axis = config.rotation_group.axes[0].direction
        direction = oriented_axis_direction(config, axis,
                                            config.rotation_group)
        rot = random_rotation(rng)
        moved = Configuration([rot @ p for p in pts])
        moved_axis = moved.rotation_group.axes[0].direction
        moved_dir = oriented_axis_direction(moved, moved_axis,
                                            moved.rotation_group)
        assert np.allclose(moved_dir, rot @ direction, atol=1e-6) or \
            np.allclose(moved_dir, rot @ direction, atol=1e-6)
