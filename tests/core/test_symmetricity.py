"""Tests for the symmetricity ϱ(P) (Definitions 5 and 6)."""

import numpy as np
import pytest

from repro.core.configuration import Configuration
from repro.core.symmetricity import symmetricity, symmetricity_of_multiset
from repro.errors import ConfigurationError
from repro.groups.group import GroupSpec
from repro.groups.subgroups import is_abstract_subgroup
from repro.patterns import polyhedra
from repro.patterns.library import compose_shells, named_pattern
from tests.conftest import generic_cloud


def maximal_names(points) -> set[str]:
    return {str(s) for s in symmetricity(Configuration(points)).maximal}


class TestPaperTable3Values:
    """ϱ of the transitive sets, as listed in Table 3 (maximal sets —
    the paper's cuboctahedron row lists C3 which is below T)."""

    def test_tetrahedron(self):
        assert maximal_names(named_pattern("tetrahedron")) == {"D2"}

    def test_octahedron(self):
        assert maximal_names(named_pattern("octahedron")) == {"D3"}

    def test_cube(self):
        assert maximal_names(named_pattern("cube")) == {"D4"}

    def test_cuboctahedron(self):
        assert maximal_names(named_pattern("cuboctahedron")) == {"T", "C4"}

    def test_icosahedron(self):
        assert maximal_names(named_pattern("icosahedron")) == {"T", "D3"}

    def test_dodecahedron(self):
        assert maximal_names(named_pattern("dodecahedron")) == {"D5", "D2"}

    def test_icosidodecahedron(self):
        assert maximal_names(
            named_pattern("icosidodecahedron")) == {"C5", "C3"}


class TestPolygonsAndGenericSets:
    def test_even_polygon(self):
        # Paper: rho of a regular n-gon is {C_n, D_{n/2}} for even n.
        assert maximal_names(
            polyhedra.regular_polygon_pattern(8)) == {"C8", "D4"}

    def test_odd_polygon(self):
        assert maximal_names(
            polyhedra.regular_polygon_pattern(5)) == {"C5"}

    def test_generic_cloud(self):
        assert maximal_names(generic_cloud(9, seed=4)) == {"C1"}

    def test_free_orbit_has_full_group(self):
        from repro.groups.catalog import octahedral_group
        from repro.patterns.orbits import transitive_set

        pts = transitive_set(octahedral_group(), mu=1)
        assert maximal_names(pts) == {"O"}

    def test_pyramid_apex_blocks_axis(self):
        # The apex occupies the single C_k axis, so rho = {C1}.
        assert maximal_names(polyhedra.pyramid(4)) == {"C1"}

    def test_prism_is_free(self):
        assert maximal_names(polyhedra.prism(5)) == {"D5"}

    def test_composite_cube_octahedron(self):
        # Paper Section 4.2: rho = {C2} (no three perpendicular free
        # 2-fold axes).
        pts = compose_shells(named_pattern("octahedron"),
                             named_pattern("cube"))
        assert maximal_names(pts) == {"C2"}


class TestStructuralProperties:
    def test_always_contains_trivial(self, cube):
        rho = symmetricity(Configuration(cube))
        assert GroupSpec.parse("C1") in rho

    def test_downward_closed(self):
        for name in ["cube", "icosahedron", "cuboctahedron"]:
            rho = symmetricity(Configuration(named_pattern(name)))
            for spec in list(rho.specs):
                from repro.groups.subgroups import proper_abstract_subgroups

                for sub in proper_abstract_subgroups(spec):
                    assert sub in rho.specs

    def test_witnesses_act_freely(self, cube):
        config = Configuration(cube)
        rho = symmetricity(config)
        for spec, arrangements in rho.witnesses.items():
            for witness in arrangements:
                for p in config.relative_points():
                    assert witness.stabilizer_size(p) == 1

    def test_is_subset_of(self, cube, octagon):
        rho_p = symmetricity(Configuration(cube))
        rho_f = symmetricity(Configuration(octagon))
        assert rho_p.is_subset_of(rho_f)
        assert not rho_f.is_subset_of(rho_p)

    def test_multiset_rejected_by_strict_function(self, cube):
        with pytest.raises(ConfigurationError):
            symmetricity(Configuration(cube + [cube[0]]))

    def test_symmetricity_within_gamma(self):
        for name in ["cube", "dodecahedron", "cuboctahedron"]:
            config = Configuration(named_pattern(name))
            gamma = config.rotation_group.spec
            rho = symmetricity(config)
            for spec in rho.specs:
                assert is_abstract_subgroup(spec, gamma)


class TestMultisetSymmetricity:
    def test_point_of_multiplicity_n(self):
        pts = [np.zeros(3)] * 24
        rho = symmetricity_of_multiset(Configuration(pts))
        names = {str(s) for s in rho.specs}
        assert "O" in names and "T" in names and "C8" in names
        assert "I" not in names  # 60 does not divide 24
        assert "C5" not in names

    def test_cube_vertices_tripled(self, cube):
        # Paper Section 7: |F| = 24, vertices of a cube with
        # multiplicity 3 each: rho(F) = {O}.
        pts = cube * 3
        rho = symmetricity_of_multiset(Configuration(pts))
        assert {str(s) for s in rho.maximal} == {"O"}

    def test_cube_vertices_doubled(self, cube):
        # Multiplicity 2 is not divisible by the 3-fold stabilizer, so
        # O itself is excluded but free-axis subgroups survive.
        pts = cube * 2
        rho = symmetricity_of_multiset(Configuration(pts))
        names = {str(s) for s in rho.specs}
        assert "O" not in names
        assert "D4" in names

    def test_collinear_multiset(self):
        ez = np.array([0.0, 0.0, 1.0])
        pts = [ez, ez, -ez, -ez]
        rho = symmetricity_of_multiset(Configuration(pts))
        names = {str(s) for s in rho.specs}
        assert "C2" in names
        assert "D2" in names  # principal on the line, stabilizers 2

    def test_degenerate_divisors(self):
        pts = [np.ones(3)] * 12
        rho = symmetricity_of_multiset(Configuration(pts))
        names = {str(s) for s in rho.specs}
        assert "T" in names and "C12" in names and "D6" in names
        assert "O" not in names


class TestCollinearSets:
    def test_symmetric_line(self):
        pts = [np.array([0, 0, z], dtype=float) for z in (-2, -1, 1, 2)]
        rho = symmetricity(Configuration(pts))
        assert {str(s) for s in rho.maximal} == {"C2"}

    def test_asymmetric_line(self):
        pts = [np.array([0, 0, z], dtype=float) for z in (-2, -1, 1, 5)]
        rho = symmetricity(Configuration(pts))
        assert {str(s) for s in rho.maximal} == {"C1"}

    def test_symmetric_line_with_center_robot(self):
        pts = [np.array([0, 0, z], dtype=float) for z in (-1, 0, 1)]
        rho = symmetricity(Configuration(pts))
        assert {str(s) for s in rho.maximal} == {"C1"}
