"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.transforms import Similarity
from repro.patterns.library import named_pattern


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def cube():
    return named_pattern("cube")


@pytest.fixture
def octagon():
    return named_pattern("octagon")


@pytest.fixture
def square_antiprism():
    return named_pattern("square_antiprism")


@pytest.fixture
def random_similarity(rng) -> Similarity:
    return Similarity.random(rng)


def generic_cloud(n: int, seed: int = 0) -> list[np.ndarray]:
    """A generic (asymmetric) point cloud for tests."""
    gen = np.random.default_rng(seed)
    return [gen.normal(size=3) for _ in range(n)]
