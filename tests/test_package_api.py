"""Tests for the top-level package API surface."""

import numpy as np
import pytest


class TestPublicApi:
    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_quickstart_snippet_from_docstring(self):
        # The README / module docstring snippet must keep working.
        from repro import Configuration, form_pattern, is_formable
        from repro.patterns import named_pattern

        cube = named_pattern("cube")
        octagon = named_pattern("octagon")
        assert is_formable(Configuration(cube), Configuration(octagon))
        result = form_pattern(cube, octagon, seed=1)
        assert result.reached

    def test_errors_hierarchy(self):
        from repro import ReproError, UnsolvableError
        from repro.errors import (
            ConfigurationError,
            DetectionError,
            EmbeddingError,
            GeometryError,
            GroupError,
            MatchingError,
            SimulationError,
        )

        for exc in (UnsolvableError, ConfigurationError, DetectionError,
                    EmbeddingError, GeometryError, GroupError,
                    MatchingError, SimulationError):
            assert issubclass(exc, ReproError)

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.cli
        import repro.core
        import repro.geometry
        import repro.groups
        import repro.patterns
        import repro.planeformation
        import repro.robots
        import repro.twod
        import repro.viz  # noqa: F401

    def test_form_pattern_frames_override(self):
        from repro import form_pattern
        from repro.patterns import named_pattern
        from repro.robots import identity_frames

        cube = named_pattern("cube")
        result = form_pattern(cube, cube, frames=identity_frames(8))
        assert result.reached
