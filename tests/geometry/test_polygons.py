"""Tests for regular polygon generation and detection."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.polygons import (
    is_regular_polygon,
    regular_polygon,
    regular_polygon_fold,
)
from repro.geometry.transforms import Similarity


class TestRegularPolygonGeneration:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 8, 13])
    def test_vertex_count(self, k):
        assert len(regular_polygon(k)) == k

    def test_vertices_on_circle(self):
        pts = regular_polygon(7, radius=2.5, center=(1, 2, 3))
        for p in pts:
            assert np.linalg.norm(p - np.array([1, 2, 3])) == pytest.approx(
                2.5)

    def test_perpendicular_to_axis(self):
        axis = np.array([1.0, 1.0, 0.0]) / np.sqrt(2)
        pts = regular_polygon(5, axis=axis)
        for p in pts:
            assert abs(float(np.dot(p, axis))) < 1e-9

    def test_phase_rotates(self):
        a = regular_polygon(4)
        b = regular_polygon(4, phase=np.pi / 4)
        assert not np.allclose(a[0], b[0])

    def test_invalid_k(self):
        with pytest.raises(GeometryError):
            regular_polygon(0)

    def test_invalid_radius(self):
        with pytest.raises(GeometryError):
            regular_polygon(3, radius=0.0)


class TestFoldDetection:
    @pytest.mark.parametrize("k", [3, 4, 5, 6, 8, 12])
    def test_detects_k(self, k):
        assert regular_polygon_fold(regular_polygon(k)) == k

    def test_detects_under_similarity(self, rng):
        pts = regular_polygon(6)
        sim = Similarity.random(rng)
        assert regular_polygon_fold(sim.apply_all(pts)) == 6

    def test_single_point_is_1_gon(self):
        assert regular_polygon_fold([np.array([1.0, 2.0, 3.0])]) == 1

    def test_pair_is_2_gon(self):
        assert regular_polygon_fold([np.zeros(3),
                                     np.array([1.0, 0, 0])]) == 2

    def test_rejects_irregular(self):
        pts = regular_polygon(5)
        pts[0] = pts[0] * 1.1
        assert regular_polygon_fold(pts) is None

    def test_rejects_non_coplanar(self):
        pts = regular_polygon(5)
        pts[0] = pts[0] + np.array([0, 0, 0.1])
        assert regular_polygon_fold(pts) is None

    def test_rejects_uneven_angles(self):
        # Correct radii and coplanar, but angular gaps are wrong.
        angles = [0.0, 1.0, 2.0, 4.0]
        pts = [np.array([np.cos(a), np.sin(a), 0.0]) for a in angles]
        assert regular_polygon_fold(pts) is None

    def test_rejects_collinear_triple(self):
        pts = [np.array([x, 0, 0], dtype=float) for x in (-1, 0, 1)]
        assert regular_polygon_fold(pts) is None

    def test_rejects_cube(self, cube):
        assert regular_polygon_fold(cube) is None

    def test_empty(self):
        assert regular_polygon_fold([]) is None

    def test_is_regular_polygon_wrapper(self):
        assert is_regular_polygon(regular_polygon(9))
        assert not is_regular_polygon(regular_polygon(9)[:-1] + [
            np.array([0.0, 0.0, 1.0])])
