"""Tests for rotation-matrix construction and identification."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.rotations import (
    identity_rotation,
    is_rotation_matrix,
    random_rotation,
    rotation_about_axis,
    rotation_aligning,
    rotation_angle,
    rotation_axis,
    rotation_order,
)


class TestRotationAboutAxis:
    def test_quarter_turn_about_z(self):
        rot = rotation_about_axis([0, 0, 1], np.pi / 2)
        assert np.allclose(rot @ [1, 0, 0], [0, 1, 0], atol=1e-12)

    def test_right_hand_rule(self):
        rot = rotation_about_axis([1, 0, 0], np.pi / 2)
        assert np.allclose(rot @ [0, 1, 0], [0, 0, 1], atol=1e-12)

    def test_axis_is_fixed(self, rng):
        axis = rng.normal(size=3)
        rot = rotation_about_axis(axis, 1.234)
        unit = axis / np.linalg.norm(axis)
        assert np.allclose(rot @ unit, unit, atol=1e-12)

    def test_full_turn_is_identity(self):
        rot = rotation_about_axis([1, 2, 3], 2 * np.pi)
        assert np.allclose(rot, np.eye(3), atol=1e-12)

    def test_composition_adds_angles(self, rng):
        axis = rng.normal(size=3)
        a = rotation_about_axis(axis, 0.7)
        b = rotation_about_axis(axis, 0.5)
        c = rotation_about_axis(axis, 1.2)
        assert np.allclose(a @ b, c, atol=1e-12)


class TestIsRotationMatrix:
    def test_identity(self):
        assert is_rotation_matrix(np.eye(3))

    def test_rotation(self, rng):
        assert is_rotation_matrix(random_rotation(rng))

    def test_reflection_rejected(self):
        assert not is_rotation_matrix(np.diag([1.0, 1.0, -1.0]))

    def test_scaling_rejected(self):
        assert not is_rotation_matrix(2.0 * np.eye(3))

    def test_wrong_shape_rejected(self):
        assert not is_rotation_matrix(np.eye(2))


class TestAngleAndAxis:
    @pytest.mark.parametrize("angle", [0.1, 0.5, 1.0, 2.0, 3.0, np.pi])
    def test_angle_round_trip(self, angle):
        rot = rotation_about_axis([0, 0, 1], angle)
        assert rotation_angle(rot) == pytest.approx(angle, abs=1e-9)

    def test_axis_round_trip(self, rng):
        axis = rng.normal(size=3)
        axis /= np.linalg.norm(axis)
        rot = rotation_about_axis(axis, 1.0)
        recovered = rotation_axis(rot)
        assert np.allclose(recovered, axis, atol=1e-9)

    def test_half_turn_axis_up_to_sign(self):
        rot = rotation_about_axis([0, 1, 0], np.pi)
        recovered = rotation_axis(rot)
        assert np.allclose(np.abs(recovered), [0, 1, 0], atol=1e-9)

    def test_identity_has_no_axis(self):
        with pytest.raises(GeometryError):
            rotation_axis(identity_rotation())

    def test_negative_angle_flips_axis(self):
        plus = rotation_about_axis([0, 0, 1], 0.5)
        minus = rotation_about_axis([0, 0, 1], -0.5)
        assert np.allclose(rotation_axis(plus), -rotation_axis(minus),
                           atol=1e-9)


class TestRotationAligning:
    def test_aligns(self, rng):
        for _ in range(20):
            a = rng.normal(size=3)
            b = rng.normal(size=3)
            rot = rotation_aligning(a, b)
            assert is_rotation_matrix(rot)
            image = rot @ (a / np.linalg.norm(a))
            assert np.allclose(image, b / np.linalg.norm(b), atol=1e-9)

    def test_parallel_gives_identity(self):
        assert np.allclose(rotation_aligning([1, 1, 0], [2, 2, 0]),
                           np.eye(3), atol=1e-9)

    def test_antiparallel(self):
        rot = rotation_aligning([0, 0, 1], [0, 0, -1])
        assert is_rotation_matrix(rot)
        assert np.allclose(rot @ [0, 0, 1], [0, 0, -1], atol=1e-9)


class TestRotationOrder:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 6, 7, 12])
    def test_exact_orders(self, k):
        rot = rotation_about_axis([1, 1, 1], 2 * np.pi / k)
        assert rotation_order(rot) == k

    def test_irrational_angle_has_no_order(self):
        rot = rotation_about_axis([0, 0, 1], 1.0)  # 1 radian
        assert rotation_order(rot, max_order=50) is None

    def test_power_consistency(self):
        rot = rotation_about_axis([0, 0, 1], 2 * np.pi * 2 / 5)
        assert rotation_order(rot) == 5


class TestRandomRotation:
    def test_always_valid(self, rng):
        for _ in range(50):
            assert is_rotation_matrix(random_rotation(rng))

    def test_reproducible(self):
        a = random_rotation(np.random.default_rng(7))
        b = random_rotation(np.random.default_rng(7))
        assert np.allclose(a, b)
