"""Tests for smallest enclosing balls and innermost empty balls."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.balls import (
    Ball,
    innermost_empty_ball,
    is_spherical,
    smallest_enclosing_ball,
)
from repro.patterns.library import named_pattern


class TestBall:
    def test_contains_interior_point(self):
        ball = Ball(center=np.zeros(3), radius=2.0)
        assert ball.contains([1.0, 0.0, 0.0])

    def test_contains_boundary_point(self):
        ball = Ball(center=np.zeros(3), radius=1.0)
        assert ball.contains([1.0, 0.0, 0.0])

    def test_rejects_exterior_point(self):
        ball = Ball(center=np.zeros(3), radius=1.0)
        assert not ball.contains([1.1, 0.0, 0.0])

    def test_on_sphere(self):
        ball = Ball(center=np.array([1.0, 0.0, 0.0]), radius=1.0)
        assert ball.on_sphere([2.0, 0.0, 0.0])
        assert not ball.on_sphere([1.0, 0.0, 0.0])

    def test_strictly_inside(self):
        ball = Ball(center=np.zeros(3), radius=1.0)
        assert ball.strictly_inside([0.5, 0.0, 0.0])
        assert not ball.strictly_inside([1.0, 0.0, 0.0])


class TestSmallestEnclosingBall:
    def test_single_point(self):
        ball = smallest_enclosing_ball([[1.0, 2.0, 3.0]])
        assert np.allclose(ball.center, [1.0, 2.0, 3.0])
        assert ball.radius == pytest.approx(0.0, abs=1e-12)

    def test_two_points_diametral(self):
        ball = smallest_enclosing_ball([[0, 0, 0], [2, 0, 0]])
        assert np.allclose(ball.center, [1, 0, 0])
        assert ball.radius == pytest.approx(1.0)

    def test_equilateral_triangle_circumcenter(self):
        pts = [[1, 0, 0], [-0.5, np.sqrt(3) / 2, 0],
               [-0.5, -np.sqrt(3) / 2, 0]]
        ball = smallest_enclosing_ball(pts)
        assert np.allclose(ball.center, [0, 0, 0], atol=1e-9)
        assert ball.radius == pytest.approx(1.0)

    def test_obtuse_triangle_uses_longest_edge(self):
        # For an obtuse triangle the SEB is the diametral ball of the
        # longest edge, not the circumball.
        pts = [[0, 0, 0], [4, 0, 0], [1, 0.5, 0]]
        ball = smallest_enclosing_ball(pts)
        assert np.allclose(ball.center, [2, 0, 0], atol=1e-9)
        assert ball.radius == pytest.approx(2.0)

    def test_regular_tetrahedron(self):
        pts = named_pattern("tetrahedron")
        ball = smallest_enclosing_ball(pts)
        assert np.allclose(ball.center, [0, 0, 0], atol=1e-9)
        assert ball.radius == pytest.approx(1.0)

    def test_cube_center_and_radius(self):
        pts = [np.array([x, y, z], dtype=float)
               for x in (-1, 1) for y in (-1, 1) for z in (-1, 1)]
        ball = smallest_enclosing_ball(pts)
        assert np.allclose(ball.center, [0, 0, 0], atol=1e-9)
        assert ball.radius == pytest.approx(np.sqrt(3.0))

    def test_interior_points_do_not_matter(self):
        pts = [[1, 0, 0], [-1, 0, 0], [0, 1, 0], [0, -1, 0],
               [0, 0, 1], [0, 0, -1], [0.1, 0.1, 0.1]]
        ball = smallest_enclosing_ball(pts)
        assert ball.radius == pytest.approx(1.0)

    def test_random_clouds_containment_and_support(self, rng):
        for _ in range(50):
            pts = rng.normal(size=(int(rng.integers(2, 25)), 3))
            ball = smallest_enclosing_ball(pts)
            assert all(ball.contains(p) for p in pts)
            support = sum(ball.on_sphere(p) for p in pts)
            assert support >= 2

    def test_translation_equivariance(self, rng):
        pts = rng.normal(size=(10, 3))
        shift = np.array([5.0, -3.0, 2.0])
        ball_a = smallest_enclosing_ball(pts)
        ball_b = smallest_enclosing_ball(pts + shift)
        assert np.allclose(ball_b.center, ball_a.center + shift, atol=1e-8)
        assert ball_b.radius == pytest.approx(ball_a.radius)

    def test_empty_input_raises(self):
        with pytest.raises(GeometryError):
            smallest_enclosing_ball([])

    def test_deterministic(self, rng):
        pts = rng.normal(size=(12, 3))
        a = smallest_enclosing_ball(pts)
        b = smallest_enclosing_ball(pts)
        assert np.allclose(a.center, b.center)
        assert a.radius == b.radius


class TestInnermostEmptyBall:
    def test_touches_nearest_point(self):
        pts = [[1, 0, 0], [-1, 0, 0], [0, 2, 0], [0, -2, 0]]
        inner = innermost_empty_ball(pts, center=[0, 0, 0])
        assert inner.radius == pytest.approx(1.0)

    def test_zero_radius_when_center_occupied(self):
        pts = [[0, 0, 0], [1, 0, 0], [-1, 0, 0]]
        inner = innermost_empty_ball(pts, center=[0, 0, 0])
        assert inner.radius == pytest.approx(0.0)

    def test_default_center_is_seb_center(self):
        pts = [[1, 0, 0], [-1, 0, 0], [0, 1, 0], [0, -1, 0]]
        inner = innermost_empty_ball(pts)
        assert np.allclose(inner.center, [0, 0, 0], atol=1e-9)

    def test_empty_input_raises(self):
        with pytest.raises(GeometryError):
            innermost_empty_ball([])


class TestIsSpherical:
    def test_cube_is_spherical(self, cube):
        assert is_spherical(cube)

    def test_cube_plus_interior_point_is_not(self, cube):
        assert not is_spherical(cube + [np.array([0.1, 0.0, 0.0])])

    def test_two_shells_are_not_spherical(self):
        from repro.patterns.library import compose_shells, named_pattern

        pts = compose_shells(named_pattern("cube"),
                             named_pattern("octahedron"))
        assert not is_spherical(pts)
