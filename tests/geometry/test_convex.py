"""Tests for convex polyhedra with merged coplanar faces."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.convex import ConvexPolyhedron
from repro.patterns.library import named_pattern


class TestFaceMerging:
    def test_cube_has_six_squares(self, cube):
        poly = ConvexPolyhedron(cube)
        assert poly.face_sizes() == [4] * 6

    def test_tetrahedron_has_four_triangles(self):
        poly = ConvexPolyhedron(named_pattern("tetrahedron"))
        assert poly.face_sizes() == [3] * 4

    def test_octahedron_has_eight_triangles(self):
        poly = ConvexPolyhedron(named_pattern("octahedron"))
        assert poly.face_sizes() == [3] * 8

    def test_cuboctahedron_mixed_faces(self):
        poly = ConvexPolyhedron(named_pattern("cuboctahedron"))
        assert poly.face_sizes() == [3] * 8 + [4] * 6

    def test_icosidodecahedron_mixed_faces(self):
        poly = ConvexPolyhedron(named_pattern("icosidodecahedron"))
        assert poly.face_sizes() == [3] * 20 + [5] * 12

    def test_dodecahedron_pentagons(self):
        poly = ConvexPolyhedron(named_pattern("dodecahedron"))
        assert poly.face_sizes() == [5] * 12

    def test_icosahedron_triangles(self):
        poly = ConvexPolyhedron(named_pattern("icosahedron"))
        assert poly.face_sizes() == [3] * 20


class TestFaceGeometry:
    def test_outward_normals(self, cube):
        poly = ConvexPolyhedron(cube)
        for face in poly.faces:
            assert float(np.dot(face.normal, face.center)) > 0

    def test_face_centers_of_cube(self, cube):
        poly = ConvexPolyhedron(cube)
        centers = sorted(tuple(np.round(f.center, 9)) for f in poly.faces)
        expected = sorted(tuple(np.round(np.array(c) / np.sqrt(3), 9))
                          for c in [(1, 0, 0), (-1, 0, 0), (0, 1, 0),
                                    (0, -1, 0), (0, 0, 1), (0, 0, -1)])
        for got, want in zip(centers, expected):
            assert np.allclose(got, want, atol=1e-9)

    def test_faces_of_vertex_cube(self, cube):
        poly = ConvexPolyhedron(cube)
        for i in range(8):
            assert len(poly.faces_of_vertex(i)) == 3

    def test_faces_of_vertex_cuboctahedron(self):
        poly = ConvexPolyhedron(named_pattern("cuboctahedron"))
        for i in range(12):
            faces = poly.faces_of_vertex(i)
            sizes = sorted(f.size for f in faces)
            assert sizes == [3, 3, 4, 4]

    def test_edge_lengths_cube(self, cube):
        poly = ConvexPolyhedron(cube)
        lengths = poly.edge_lengths()
        assert len(lengths) == 12
        assert all(length == pytest.approx(2.0 / np.sqrt(3))
                   for length in lengths)

    def test_min_edge_length(self):
        poly = ConvexPolyhedron(named_pattern("tetrahedron"))
        assert poly.min_edge_length() == pytest.approx(
            np.sqrt(8.0 / 3.0))

    def test_cyclic_vertex_order(self, cube):
        poly = ConvexPolyhedron(cube)
        for face in poly.faces:
            idx = face.vertex_indices
            verts = poly.vertices[list(idx)]
            # Consecutive vertices must be adjacent (edge length, not
            # diagonal).
            for i in range(len(idx)):
                a = verts[i]
                b = verts[(i + 1) % len(idx)]
                assert np.linalg.norm(a - b) == pytest.approx(
                    2.0 / np.sqrt(3), rel=1e-6)


class TestValidation:
    def test_too_few_points(self):
        with pytest.raises(GeometryError):
            ConvexPolyhedron([[0, 0, 0], [1, 0, 0], [0, 1, 0]])

    def test_coplanar_points(self):
        pts = [[0, 0, 0], [1, 0, 0], [0, 1, 0], [1, 1, 0]]
        with pytest.raises(GeometryError):
            ConvexPolyhedron(pts)

    def test_interior_point_rejected(self, cube):
        with pytest.raises(GeometryError):
            ConvexPolyhedron(cube + [np.zeros(3)])
