"""Tests for similarity transforms and pattern similarity."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.rotations import rotation_about_axis
from repro.geometry.transforms import Similarity, are_similar
from repro.patterns.library import named_pattern
from tests.conftest import generic_cloud


class TestSimilarity:
    def test_identity_default(self):
        sim = Similarity()
        assert np.allclose(sim.apply([1, 2, 3]), [1, 2, 3])

    def test_apply_composition_order(self):
        sim = Similarity(rotation=rotation_about_axis([0, 0, 1], np.pi / 2),
                         scale=2.0, translation=np.array([1.0, 0.0, 0.0]))
        # x -> 2 R x + t : (1,0,0) -> (0,2,0) + (1,0,0)
        assert np.allclose(sim.apply([1, 0, 0]), [1, 2, 0], atol=1e-12)

    def test_inverse_round_trip(self, rng):
        sim = Similarity.random(rng)
        inv = sim.inverse()
        for _ in range(5):
            p = rng.normal(size=3)
            assert np.allclose(inv.apply(sim.apply(p)), p, atol=1e-9)

    def test_compose(self, rng):
        a = Similarity.random(rng)
        b = Similarity.random(rng)
        p = rng.normal(size=3)
        assert np.allclose(a.compose(b).apply(p), a.apply(b.apply(p)),
                           atol=1e-9)

    def test_negative_scale_rejected(self):
        with pytest.raises(GeometryError):
            Similarity(scale=-1.0)

    def test_reflection_rejected(self):
        with pytest.raises(GeometryError):
            Similarity(rotation=np.diag([1.0, 1.0, -1.0]))


class TestAreSimilar:
    def test_identical(self, cube):
        assert are_similar(cube, cube)

    def test_under_random_similarity(self, rng, cube):
        sim = Similarity.random(rng)
        assert are_similar(cube, sim.apply_all(cube))

    def test_generic_cloud_under_similarity(self, rng):
        cloud = generic_cloud(9, seed=3)
        sim = Similarity.random(rng)
        assert are_similar(cloud, sim.apply_all(cloud))

    def test_different_patterns(self, cube, octagon):
        assert not are_similar(cube, octagon)

    def test_mirror_image_is_not_similar(self):
        # Orientation-preserving similarity only: a chiral set is not
        # similar to its mirror image.
        cloud = generic_cloud(7, seed=5)
        mirrored = [np.array([p[0], p[1], -p[2]]) for p in cloud]
        assert not are_similar(cloud, mirrored)

    def test_achiral_set_is_similar_to_its_mirror(self, cube):
        mirrored = [np.array([p[0], p[1], -p[2]]) for p in cube]
        assert are_similar(cube, mirrored)

    def test_different_sizes(self, cube):
        assert not are_similar(cube, cube[:-1])

    def test_multiset_multiplicities_matter(self):
        ex = np.array([1.0, 0, 0])
        a = [np.zeros(3), np.zeros(3), np.zeros(3), ex]
        b = [np.zeros(3), np.zeros(3), ex, ex]
        assert not are_similar(a, b)

    def test_degenerate_all_same_point(self):
        a = [np.array([1.0, 2.0, 3.0])] * 4
        b = [np.array([-5.0, 0.0, 0.0])] * 4
        assert are_similar(a, b)

    def test_degenerate_vs_nondegenerate(self):
        a = [np.zeros(3)] * 3
        b = [np.zeros(3), np.zeros(3), np.array([1.0, 0, 0])]
        assert not are_similar(a, b)

    def test_collinear_sets(self):
        a = [np.array([0, 0, z], dtype=float) for z in (0, 1, 3)]
        b = [np.array([z, z, 0], dtype=float) for z in (0, 2, 6)]
        assert are_similar(a, b)

    def test_collinear_mismatch(self):
        a = [np.array([0, 0, z], dtype=float) for z in (0, 1, 3)]
        b = [np.array([0, 0, z], dtype=float) for z in (0, 1, 4)]
        assert not are_similar(a, b)

    def test_near_miss_rejected(self, cube):
        perturbed = [p + np.array([0.01, 0, 0]) if i == 0 else p
                     for i, p in enumerate(cube)]
        assert not are_similar(cube, perturbed)
