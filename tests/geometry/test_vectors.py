"""Tests for basic vector utilities."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.vectors import (
    angle_between,
    are_parallel,
    are_perpendicular,
    centroid,
    distance,
    is_unit,
    norm,
    normalize,
    orthonormal_basis_for,
)


class TestNormalize:
    def test_unit_result(self, rng):
        for _ in range(10):
            v = rng.normal(size=3)
            assert np.linalg.norm(normalize(v)) == pytest.approx(1.0)

    def test_direction_preserved(self):
        assert np.allclose(normalize([0, 0, 5]), [0, 0, 1])

    def test_zero_vector_raises(self):
        with pytest.raises(GeometryError):
            normalize([0, 0, 0])

    def test_wrong_shape_raises(self):
        with pytest.raises(GeometryError):
            normalize([1, 2])


class TestNormDistance:
    def test_norm(self):
        assert norm([3, 4, 0]) == pytest.approx(5.0)

    def test_distance(self):
        assert distance([1, 0, 0], [1, 3, 4]) == pytest.approx(5.0)


class TestAngles:
    def test_perpendicular(self):
        assert angle_between([1, 0, 0], [0, 1, 0]) == pytest.approx(
            np.pi / 2)

    def test_parallel(self):
        assert angle_between([1, 1, 1], [2, 2, 2]) == pytest.approx(0.0)

    def test_antiparallel(self):
        assert angle_between([1, 0, 0], [-1, 0, 0]) == pytest.approx(np.pi)


class TestPredicates:
    def test_is_unit(self):
        assert is_unit([1, 0, 0])
        assert not is_unit([1, 1, 0])

    def test_are_parallel(self):
        assert are_parallel([1, 2, 3], [-2, -4, -6])
        assert not are_parallel([1, 0, 0], [1, 0.1, 0])

    def test_are_perpendicular(self):
        assert are_perpendicular([1, 0, 0], [0, 0, 1])
        assert not are_perpendicular([1, 0, 0], [1, 1, 0])


class TestOrthonormalBasis:
    def test_right_handed_and_orthonormal(self, rng):
        for _ in range(20):
            w = rng.normal(size=3)
            u, v, w_hat = orthonormal_basis_for(w)
            mat = np.column_stack([u, v, w_hat])
            assert np.allclose(mat @ mat.T, np.eye(3), atol=1e-9)
            assert np.linalg.det(mat) == pytest.approx(1.0)

    def test_third_vector_parallel_to_input(self):
        _, _, w_hat = orthonormal_basis_for([0, 0, 7])
        assert np.allclose(w_hat, [0, 0, 1])

    def test_deterministic(self):
        a = orthonormal_basis_for([1, 2, 3])
        b = orthonormal_basis_for([1, 2, 3])
        for x, y in zip(a, b):
            assert np.allclose(x, y)


class TestCentroid:
    def test_mean(self):
        assert np.allclose(centroid([[0, 0, 0], [2, 0, 0]]), [1, 0, 0])

    def test_empty_raises(self):
        with pytest.raises(GeometryError):
            centroid([])
