"""Campaign report generation on a populated store."""

from __future__ import annotations

import pytest

from repro.campaign import (
    generate_report,
    open_store,
    run_campaign,
    write_report,
)
from repro.campaign.report import section_sql
from repro.errors import ReproError


@pytest.fixture(scope="module")
def populated_store(tmp_path_factory):
    from repro.campaign.spec import campaign_from_mapping

    campaign = campaign_from_mapping({
        "name": "report",
        "defaults": {"trials": 2},
        "experiments": [
            {"name": "lemma7", "seed": [1, 2]},
            {"name": "baseline_2d", "seed": 1},
        ],
    })
    path = tmp_path_factory.mktemp("report") / "r.jsonl"
    run_campaign(campaign, store_path=path)
    with open_store(path) as store:
        yield store


class TestMarkdown:
    def test_one_section_per_experiment(self, populated_store):
        report = generate_report(populated_store)
        assert report.startswith("# Campaign report")
        assert "## baseline_2d" in report
        assert "## lemma7" in report
        assert "3 completed cells" in report

    def test_sections_carry_their_sql(self, populated_store):
        report = generate_report(populated_store)
        assert section_sql("lemma7") in report
        assert "```sql" in report

    def test_rows_tabulated_with_digest_key(self, populated_store):
        report = generate_report(populated_store)
        (cell,) = populated_store.cells("baseline_2d")
        # digest column is truncated to 12 chars for readability
        assert cell["digest"][:12] in report
        assert "| digest |" in report


class TestHtml:
    def test_html_renders_tables_and_escapes(self, populated_store):
        html = generate_report(populated_store, fmt="html")
        assert html.startswith("<!DOCTYPE html>")
        assert "<table>" in html
        assert "<h2>lemma7</h2>" in html

    def test_unknown_format_rejected(self, populated_store):
        with pytest.raises(ReproError, match="unknown report format"):
            generate_report(populated_store, fmt="pdf")


class TestWriteReport:
    def test_format_follows_suffix(self, populated_store, tmp_path):
        html_path = tmp_path / "report.html"
        write_report(populated_store, html_path)
        assert html_path.read_text(
            encoding="utf-8").startswith("<!DOCTYPE html>")

        md_path = tmp_path / "report.md"
        write_report(populated_store, md_path)
        assert md_path.read_text(
            encoding="utf-8").startswith("# Campaign report")
