"""The campaign runner: inline reference path, warm pool
byte-identity, coalescing, and error surfacing."""

from __future__ import annotations

import pytest

from repro.api import ExperimentSpec, run_experiment
from repro.campaign import open_store, run_campaign
from repro.campaign.runner import _unique_tasks
from repro.campaign.spec import CampaignCell, CampaignSpec, cell_digest
from repro.errors import ReproError
from repro.obs.manifest import jsonable_rows


def _spec(cells) -> CampaignSpec:
    return CampaignSpec(name="t", cells=tuple(cells))


class TestInline:
    def test_rows_match_direct_run(self, tmp_path):
        spec = ExperimentSpec(trials=2, seed=1)
        campaign = _spec([CampaignCell("lemma7", spec, 0)])
        store_path = tmp_path / "r.jsonl"
        result = run_campaign(campaign, jobs=1, store_path=store_path)
        assert result.cells_executed == 1

        direct = run_experiment("lemma7", spec)
        with open_store(store_path) as store:
            (record,) = store.cells()
        assert record["rows"] == jsonable_rows(direct.rows)
        assert record["rows_sha256"] == \
            direct.manifest["rows"]["sha256"]
        assert record["digest"] == \
            cell_digest(CampaignCell("lemma7", spec, 0))

    def test_summary_counts(self, tiny_campaign, tmp_path):
        result = run_campaign(tiny_campaign, jobs=1,
                              store_path=tmp_path / "r.jsonl")
        assert result.cells_total == 3
        assert result.cells_executed == 3
        assert result.cells_skipped == 0
        assert result.cells_coalesced == 0
        assert result.cells_pending == 0
        assert result.store_kind == "jsonl"
        rendered = result.render()
        assert "executed:  3" in rendered

    def test_journal_records_each_cell(self, tiny_campaign, tmp_path):
        store_path = tmp_path / "r.jsonl"
        run_campaign(tiny_campaign, jobs=1, store_path=store_path)
        with open_store(store_path) as store:
            journal = store.journal()
        kinds = [event["kind"] for event in journal]
        assert kinds.count("cell-journal") == 3
        assert kinds[-1] == "campaign-run"
        # wall-clock lives only in the journal, never in cells
        assert all("phase_totals" in event for event in journal
                   if event["kind"] == "cell-journal")


class TestCoalescing:
    def test_duplicate_digests_run_once(self, tmp_path):
        spec = ExperimentSpec(trials=2, seed=1)
        campaign = _spec([
            CampaignCell("lemma7", spec, 0),
            CampaignCell("lemma7", spec, 1),  # identical -> coalesced
            CampaignCell("baseline_2d", spec, 2),
        ])
        result = run_campaign(campaign, jobs=1,
                              store_path=tmp_path / "r.jsonl")
        assert result.cells_total == 3
        assert result.cells_coalesced == 1
        assert result.cells_executed == 2

    def test_unique_tasks_order_is_deterministic(self, tiny_campaign):
        tasks, coalesced = _unique_tasks(tiny_campaign)
        assert coalesced == 0
        assert [task[1] for task in tasks] == \
            ["lemma7", "lemma7", "baseline_2d"]


class TestWarmPool:
    def test_store_byte_identical_across_jobs(self, tiny_campaign,
                                              tmp_path):
        exports = {}
        for jobs in (1, 2):
            store_path = tmp_path / f"r{jobs}.jsonl"
            result = run_campaign(tiny_campaign, jobs=jobs,
                                  store_path=store_path)
            assert result.cells_executed == 3
            with open_store(store_path) as store:
                exports[jobs] = store.export_canonical()
        assert exports[1] == exports[2]

    def test_worker_error_surfaces(self):
        # an unknown experiment fails inside the worker; the pool must
        # raise with the worker traceback, not hang
        from repro.campaign.pool import WarmPool

        bad_task = ("0" * 64, "no-such-experiment",
                    ExperimentSpec(trials=1, seed=1))
        with WarmPool(2) as pool:
            with pytest.raises(ReproError, match="failed in worker"):
                list(pool.run([bad_task]))


class TestArguments:
    def test_negative_max_cells_rejected(self, tiny_campaign, tmp_path):
        with pytest.raises(ReproError, match="non-negative"):
            run_campaign(tiny_campaign, max_cells=-1,
                         store_path=tmp_path / "r.jsonl")

    def test_fresh_clears_previous_results(self, tiny_campaign,
                                           tmp_path):
        store_path = tmp_path / "r.jsonl"
        run_campaign(tiny_campaign, store_path=store_path)
        rerun = run_campaign(tiny_campaign, store_path=store_path,
                             fresh=True)
        assert rerun.cells_skipped == 0
        assert rerun.cells_executed == 3

    def test_caller_owned_store_stays_open(self, tiny_campaign,
                                           tmp_path):
        store = open_store(tmp_path / "r.jsonl")
        try:
            run_campaign(tiny_campaign, store=store)
            # still usable: run_campaign must not close a caller store
            assert len(store.completed_digests()) == 3
        finally:
            store.close()
