"""Shared fixtures for the campaign tests.

Every fixture campaign is tiny (lemma7 / baseline_2d with 1-2 trials)
so the whole suite stays in the seconds range; the pool tests are the
only ones that spawn processes.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign.spec import campaign_from_mapping


@pytest.fixture
def tiny_mapping():
    return {
        "name": "tiny",
        "defaults": {"trials": 2},
        "experiments": [
            {"name": "lemma7", "seed": [1, 2]},
            {"name": "baseline_2d", "seed": 1},
        ],
    }


@pytest.fixture
def tiny_campaign(tiny_mapping):
    return campaign_from_mapping(tiny_mapping)


@pytest.fixture
def spec_file(tmp_path, tiny_mapping):
    path = tmp_path / "campaign.json"
    path.write_text(json.dumps(tiny_mapping), encoding="utf-8")
    return path
