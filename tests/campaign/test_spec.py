"""Campaign spec compilation: grid expansion, digests, errors."""

from __future__ import annotations

import json

import pytest

from repro.api import ExperimentSpec
from repro.campaign.spec import (
    GRID_AXES,
    CampaignCell,
    campaign_from_mapping,
    cell_cost,
    cell_digest,
    digest_preimage,
    load_campaign,
)
from repro.errors import ReproError


class TestExpansion:
    def test_scalar_axes_one_cell(self):
        spec = campaign_from_mapping({
            "name": "one",
            "experiments": [{"name": "lemma7", "trials": 3, "seed": 7}],
        })
        assert len(spec.cells) == 1
        cell = spec.cells[0]
        assert cell.experiment == "lemma7"
        assert cell.spec.trials == 3
        assert cell.spec.seed == 7
        assert cell.spec.jobs == 1

    def test_list_axes_cartesian_product(self, tiny_campaign):
        # lemma7 x seeds {1,2} + baseline_2d x seed 1
        assert [(c.experiment, c.spec.seed)
                for c in tiny_campaign.cells] == [
            ("lemma7", 1), ("lemma7", 2), ("baseline_2d", 1)]
        assert [c.index for c in tiny_campaign.cells] == [0, 1, 2]

    def test_defaults_merge_and_entry_override(self):
        spec = campaign_from_mapping({
            "name": "d",
            "defaults": {"trials": 5, "seed": [0, 1]},
            "experiments": [
                {"name": "lemma7"},
                {"name": "baseline_2d", "seed": 9},
            ],
        })
        assert [(c.experiment, c.spec.trials, c.spec.seed)
                for c in spec.cells] == [
            ("lemma7", 5, 0), ("lemma7", 5, 1), ("baseline_2d", 5, 9)]

    def test_axis_order_is_grid_axes_order(self):
        spec = campaign_from_mapping({
            "name": "o",
            "experiments": [{"name": "lemma7", "trials": [1, 2],
                             "seed": [5, 6]}],
        })
        # trials varies slowest (earlier in GRID_AXES than seed)
        assert GRID_AXES.index("trials") < GRID_AXES.index("seed")
        assert [(c.spec.trials, c.spec.seed) for c in spec.cells] == [
            (1, 5), (1, 6), (2, 5), (2, 6)]


class TestErrors:
    def test_unknown_experiment(self):
        with pytest.raises(ReproError, match="unknown experiment"):
            campaign_from_mapping({
                "name": "x",
                "experiments": [{"name": "theorem99"}],
            })

    def test_jobs_is_not_an_axis(self):
        with pytest.raises(ReproError, match="not a campaign axis"):
            campaign_from_mapping({
                "name": "x",
                "experiments": [{"name": "lemma7", "jobs": 4}],
            })

    def test_unknown_entry_key(self):
        with pytest.raises(ReproError, match="unknown keys"):
            campaign_from_mapping({
                "name": "x",
                "experiments": [{"name": "lemma7", "pattern": "cube"}],
            })

    def test_missing_experiments(self):
        with pytest.raises(ReproError, match="non-empty"):
            campaign_from_mapping({"name": "x"})

    def test_empty_axis_list(self):
        with pytest.raises(ReproError, match="empty list"):
            campaign_from_mapping({
                "name": "x",
                "experiments": [{"name": "lemma7", "seed": []}],
            })

    def test_unknown_top_level_key(self):
        with pytest.raises(ReproError, match="unknown campaign keys"):
            campaign_from_mapping({
                "name": "x", "workers": 4,
                "experiments": [{"name": "lemma7"}],
            })


class TestLoading:
    def test_json_file(self, spec_file):
        spec = load_campaign(spec_file)
        assert spec.name == "tiny"
        assert len(spec.cells) == 3
        assert spec.source == str(spec_file)

    def test_toml_file(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "c.toml"
        path.write_text(
            'name = "t"\n\n[[experiment]]\nname = "lemma7"\n'
            "trials = 2\nseed = [1, 2]\n", encoding="utf-8")
        spec = load_campaign(path)
        assert spec.name == "t"
        assert [c.spec.seed for c in spec.cells] == [1, 2]

    def test_repo_examples_parse(self):
        pytest.importorskip("tomllib")
        from pathlib import Path
        examples = Path(__file__).resolve().parents[2] / "examples"
        paper = load_campaign(examples / "paper.toml")
        assert len(paper.cells) >= 10
        smoke = load_campaign(examples / "campaign-smoke.toml")
        assert len(smoke.cells) == 4

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="does not exist"):
            load_campaign(tmp_path / "nope.toml")

    def test_bad_suffix(self, tmp_path):
        path = tmp_path / "c.yaml"
        path.write_text("name: x\n", encoding="utf-8")
        with pytest.raises(ReproError, match="toml or .json"):
            load_campaign(path)


class TestDigest:
    def test_stable_across_equal_cells(self):
        a = CampaignCell("lemma7", ExperimentSpec(trials=2, seed=1), 0)
        b = CampaignCell("lemma7", ExperimentSpec(trials=2, seed=1), 5)
        assert cell_digest(a) == cell_digest(b)  # index is not identity

    def test_differs_by_seed_and_experiment(self):
        base = CampaignCell("lemma7", ExperimentSpec(trials=2, seed=1), 0)
        other_seed = CampaignCell(
            "lemma7", ExperimentSpec(trials=2, seed=2), 0)
        other_exp = CampaignCell(
            "baseline_2d", ExperimentSpec(trials=2, seed=1), 0)
        digests = {cell_digest(base), cell_digest(other_seed),
                   cell_digest(other_exp)}
        assert len(digests) == 3

    def test_jobs_excluded_from_preimage(self):
        inline = CampaignCell(
            "lemma7", ExperimentSpec(trials=2, seed=1, jobs=1), 0)
        pooled = CampaignCell(
            "lemma7", ExperimentSpec(trials=2, seed=1, jobs=4), 0)
        assert cell_digest(inline) == cell_digest(pooled)
        assert "jobs" not in digest_preimage(inline)["spec"]

    def test_preimage_resolves_default_trials(self):
        # trials=None resolves to the driver default, so an explicit
        # spec equal to the default digests identically.
        implicit = CampaignCell(
            "lemma7", ExperimentSpec(trials=None, seed=1), 0)
        preimage = digest_preimage(implicit)
        assert preimage["spec"]["trials"] is not None
        explicit = CampaignCell(
            "lemma7",
            ExperimentSpec(trials=preimage["spec"]["trials"], seed=1), 0)
        assert cell_digest(implicit) == cell_digest(explicit)

    def test_preimage_is_canonical_jsonable(self):
        cell = CampaignCell("lemma7", ExperimentSpec(trials=2, seed=1), 0)
        preimage = digest_preimage(cell)
        round_tripped = json.loads(json.dumps(preimage, default=str))
        assert round_tripped["experiment"] == "lemma7"
        assert round_tripped["kind"] == "campaign-cell"


class TestCost:
    def test_scales_with_trials(self):
        small = CampaignCell("lemma7", ExperimentSpec(trials=2, seed=1), 0)
        large = CampaignCell("lemma7", ExperimentSpec(trials=20, seed=1), 0)
        assert cell_cost(large) == 10 * cell_cost(small)

    def test_orders_experiments_by_weight(self):
        sweep = CampaignCell(
            "theorem11", ExperimentSpec(trials=1, seed=1), 0)
        quick = CampaignCell("lemma7", ExperimentSpec(trials=1, seed=1), 0)
        assert cell_cost(sweep) > cell_cost(quick)
