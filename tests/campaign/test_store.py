"""Results stores: the JSONL fallback (always live) and, when the
optional ``campaign`` extra is installed, the DuckDB backend serving
the identical store API."""

from __future__ import annotations

import json

import pytest

from repro.campaign.store import (
    STORE_SCHEMA_VERSION,
    JsonlStore,
    build_cell_record,
    duckdb_available,
    open_store,
)
from repro.errors import ReproError


def _record(digest: str, experiment: str = "lemma7",
            rows: list | None = None) -> dict:
    rows = [{"trial": 0, "value": 1.5}] if rows is None else rows
    return {"digest": digest, "experiment": experiment, "spec": {},
            "rows": rows, "rows_sha256": "r" * 64, "metrics": {},
            "manifest": {}}


class TestJsonlStore:
    def test_record_and_reopen(self, tmp_path):
        path = tmp_path / "r.jsonl"
        with open_store(path) as store:
            assert store.kind == "jsonl"
            store.record_cell(_record("b" * 64))
            store.record_cell(_record("a" * 64, "baseline_2d"))
        with open_store(path) as store:
            assert store.completed_digests() == {"a" * 64, "b" * 64}
            cells = store.cells()
            # sorted by digest, not insertion order
            assert [c["digest"] for c in cells] == ["a" * 64, "b" * 64]
            assert [c["digest"] for c in store.cells("lemma7")] \
                == ["b" * 64]

    def test_file_is_canonical_export(self, tmp_path):
        path = tmp_path / "r.jsonl"
        with open_store(path) as store:
            store.record_cell(_record("b" * 64))
            store.record_cell(_record("a" * 64))
            export = store.export_canonical()
        assert path.read_text(encoding="utf-8") == export
        header = json.loads(export.splitlines()[0])
        assert header == {"kind": "campaign-store",
                          "schema": STORE_SCHEMA_VERSION}

    def test_rerecord_same_digest_overwrites(self, tmp_path):
        with open_store(tmp_path / "r.jsonl") as store:
            store.record_cell(_record("a" * 64))
            store.record_cell(_record("a" * 64,
                                      rows=[{"trial": 0, "value": 2.0}]))
            cells = store.cells()
            assert len(cells) == 1
            assert cells[0]["rows"] == [{"trial": 0, "value": 2.0}]

    def test_journal_is_separate_from_canonical(self, tmp_path):
        path = tmp_path / "r.jsonl"
        with open_store(path) as store:
            store.record_cell(_record("a" * 64))
            store.journal_event({"kind": "cell-journal", "ms": 12.5})
            export = store.export_canonical()
        assert "cell-journal" not in export
        with open_store(path) as store:
            assert store.journal() == [{"kind": "cell-journal",
                                        "ms": 12.5}]

    def test_clear(self, tmp_path):
        path = tmp_path / "r.jsonl"
        with open_store(path) as store:
            store.record_cell(_record("a" * 64))
            store.journal_event({"kind": "x"})
            store.clear()
            assert store.completed_digests() == set()
        assert not path.exists()

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text(json.dumps({"kind": "campaign-store",
                                    "schema": 999}) + "\n",
                        encoding="utf-8")
        with pytest.raises(ReproError, match="schema"):
            JsonlStore(path)

    def test_query_unsupported(self, tmp_path):
        with open_store(tmp_path / "r.jsonl") as store:
            with pytest.raises(ReproError, match="DuckDB"):
                store.query("SELECT 1")

    def test_duckdb_path_degrades_without_extra(self, tmp_path):
        if duckdb_available():
            pytest.skip("duckdb installed; degrade path not reachable")
        store = open_store(tmp_path / "results.duckdb")
        try:
            assert store.kind == "jsonl"
            assert store.path.suffix == ".jsonl"
        finally:
            store.close()


class TestBuildCellRecord:
    def test_from_run_result(self):
        from repro.api import ExperimentSpec, run_experiment

        result = run_experiment(
            "lemma7", ExperimentSpec(trials=1, seed=3))
        record = build_cell_record("d" * 64, "lemma7", result)
        assert record["digest"] == "d" * 64
        assert record["experiment"] == "lemma7"
        assert len(record["rows"]) == len(result.rows)
        assert record["rows_sha256"] == \
            result.manifest["rows"]["sha256"]
        # deterministic view only: no wall-clock, no artifacts
        assert "timing" not in record["manifest"]
        assert "artifacts" not in record["manifest"]
        # metrics are the logical counters (jobs-invariant)
        assert all(not key.startswith("backend.")
                   for key in record["metrics"])
        json.dumps(record)  # jsonable as-is


class TestDuckDBStore:
    @pytest.fixture
    def store(self, tmp_path):
        pytest.importorskip("duckdb")
        with open_store(tmp_path / "results.duckdb") as handle:
            yield handle

    def test_same_api_as_jsonl(self, store):
        assert store.kind == "duckdb"
        store.record_cell(_record("b" * 64))
        store.record_cell(_record("a" * 64, "baseline_2d"))
        assert store.completed_digests() == {"a" * 64, "b" * 64}
        assert [c["digest"] for c in store.cells()] == \
            ["a" * 64, "b" * 64]

    def test_rows_table_queryable(self, store):
        store.record_cell(_record("a" * 64,
                                  rows=[{"trial": 0}, {"trial": 1}]))
        columns, records = store.query(
            "SELECT digest, row_index FROM rows ORDER BY row_index")
        assert columns == ["digest", "row_index"]
        assert records == [("a" * 64, 0), ("a" * 64, 1)]

    def test_export_matches_jsonl_backend(self, store, tmp_path):
        records = [_record("b" * 64), _record("a" * 64, "baseline_2d")]
        for record in records:
            store.record_cell(record)
        with open_store(tmp_path / "r.jsonl") as jsonl:
            for record in records:
                jsonl.record_cell(record)
            assert store.export_canonical() == jsonl.export_canonical()
