"""Resume semantics: an interrupted campaign (simulated with a cell
budget) resumes with zero recompute and a final store byte-identical
to the uninterrupted run's."""

from __future__ import annotations

from repro.campaign import open_store, run_campaign
from repro.obs import metrics as _metrics


def _export(store_path) -> str:
    with open_store(store_path) as store:
        return store.export_canonical()


class TestResume:
    def test_budget_interrupt_then_resume(self, tiny_campaign, tmp_path):
        uninterrupted = tmp_path / "full.jsonl"
        run_campaign(tiny_campaign, store_path=uninterrupted)
        reference = _export(uninterrupted)

        interrupted = tmp_path / "resumed.jsonl"
        first = run_campaign(tiny_campaign, store_path=interrupted,
                             max_cells=1)
        assert first.cells_executed == 1
        assert first.cells_pending == 2
        partial = _export(interrupted)
        assert partial != reference  # genuinely incomplete

        second = run_campaign(tiny_campaign, store_path=interrupted)
        assert second.cells_skipped == 1
        assert second.cells_executed == 2
        assert second.cells_pending == 0
        assert _export(interrupted) == reference

    def test_rerun_recomputes_nothing(self, tiny_campaign, tmp_path):
        store_path = tmp_path / "r.jsonl"
        run_campaign(tiny_campaign, store_path=store_path)
        done = _export(store_path)

        before = _metrics.registry().snapshot()
        rerun = run_campaign(tiny_campaign, store_path=store_path)
        delta = _metrics.snapshot_delta(
            before, _metrics.registry().snapshot())

        assert rerun.cells_skipped == 3
        assert rerun.cells_executed == 0
        assert _export(store_path) == done
        # zero recompute, measured: no experiment counters moved
        counters = delta.get("counters", {})
        assert counters.get("campaign.cells.executed", 0) == 0
        assert all(count == 0 for name, count in counters.items()
                   if name.startswith("experiment."))

    def test_max_cells_zero_executes_nothing(self, tiny_campaign,
                                             tmp_path):
        store_path = tmp_path / "r.jsonl"
        result = run_campaign(tiny_campaign, store_path=store_path,
                              max_cells=0)
        assert result.cells_executed == 0
        assert result.cells_pending == 3

    def test_resume_order_is_cost_then_digest(self, tiny_campaign,
                                              tmp_path):
        # With max_cells=1 the largest-cost cell runs first;
        # baseline_2d (weight 40) outweighs lemma7 (weight 7).
        store_path = tmp_path / "r.jsonl"
        run_campaign(tiny_campaign, store_path=store_path, max_cells=1)
        with open_store(store_path) as store:
            (record,) = store.cells()
        assert record["experiment"] == "baseline_2d"
