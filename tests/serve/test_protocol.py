"""The wire protocol: schema pins, round trips, coalescing keys."""

import dataclasses

import pytest

from repro.api import (
    API_SCHEMA_VERSION,
    ExperimentSpec,
    FormabilityQuery,
    QueryResult,
    RunQuery,
    SymmetricityQuery,
    as_points,
)
from repro.errors import ReproError
from repro.serve.protocol import (
    SPEC_WIRE_FIELDS,
    WIRE_SCHEMA_VERSION,
    canonical_result_text,
    decode_query,
    decode_result,
    encode_query,
    encode_result,
    query_key,
)

OCTAHEDRON = as_points([[1.0, 0, 0], [0, 1, 0], [0, 0, 1],
                        [-1.0, 0, 0], [0, -1, 0], [0, 0, -1]])


class TestWireSchemaPin:
    """The wire shape is a compatibility contract: these literals
    changing means WIRE_SCHEMA_VERSION must bump."""

    def test_versions_are_pinned(self):
        assert WIRE_SCHEMA_VERSION == 1
        assert API_SCHEMA_VERSION == 1

    def test_formability_wire_shape(self):
        wire = encode_query(FormabilityQuery(initial="cube",
                                             target="octagon"))
        assert wire == {
            "wire_schema": 1,
            "schema_version": 1,
            "kind": "formability",
            "initial": "cube",
            "target": "octagon",
        }

    def test_symmetricity_wire_shape(self):
        wire = encode_query(SymmetricityQuery(points="cube",
                                              multiset=True))
        assert wire == {
            "wire_schema": 1,
            "schema_version": 1,
            "kind": "symmetricity",
            "points": "cube",
            "multiset": True,
        }

    def test_run_wire_shape(self):
        wire = encode_query(RunQuery(name="lemma7",
                                     spec=ExperimentSpec(trials=3)))
        assert wire == {
            "wire_schema": 1,
            "schema_version": 1,
            "kind": "run",
            "name": "lemma7",
            "spec": {"trials": 3, "seed": 0, "jobs": 1, "cache": None,
                     "backend": None, "schema_version": 1},
        }

    def test_spec_wire_fields_mirror_experiment_spec(self):
        # The runtime mirror of the REP011 drift check: every wire
        # field is a spec field, and artifact paths never travel.
        spec_fields = {f.name for f in
                       dataclasses.fields(ExperimentSpec)}
        assert set(SPEC_WIRE_FIELDS) <= spec_fields
        assert not any(name.endswith("_path")
                       for name in SPEC_WIRE_FIELDS)

    def test_grid_axes_expressible_on_wire(self):
        from repro.campaign.spec import GRID_AXES

        assert set(GRID_AXES) <= set(SPEC_WIRE_FIELDS)


class TestRoundTrip:
    @pytest.mark.parametrize("query", [
        FormabilityQuery(initial="cube", target="octagon"),
        FormabilityQuery(initial=OCTAHEDRON, target="cube"),
        SymmetricityQuery(points="icosahedron"),
        SymmetricityQuery(points=OCTAHEDRON, multiset=True),
        RunQuery(name="lemma7", spec=ExperimentSpec(trials=2, seed=7)),
    ])
    def test_query_round_trip(self, query):
        assert decode_query(encode_query(query)) == query

    def test_result_round_trip(self):
        result = QueryResult(
            kind="formability", verdict="formable",
            groups={"rho_initial": ["D4"]}, explanation="yes",
            payload={"n": 8}, cache={"enabled": True},
            timing={"elapsed_ms": 1.5})
        again = decode_result(encode_result(result))
        assert again == result
        assert again.deterministic_view() == result.deterministic_view()

    def test_canonical_text_strips_sidecars(self):
        fast = QueryResult(kind="symmetricity", verdict="T",
                           timing={"elapsed_ms": 0.1})
        slow = QueryResult(kind="symmetricity", verdict="T",
                           cache={"enabled": True},
                           timing={"elapsed_ms": 99.9})
        assert canonical_result_text(fast) == canonical_result_text(slow)


class TestDecodeRejections:
    def test_newer_wire_schema_rejected(self):
        wire = encode_query(FormabilityQuery(initial="cube",
                                             target="cube"))
        wire["wire_schema"] = WIRE_SCHEMA_VERSION + 1
        with pytest.raises(ReproError, match="wire_schema"):
            decode_query(wire)

    def test_newer_record_schema_rejected(self):
        wire = encode_query(SymmetricityQuery(points="cube"))
        wire["schema_version"] = API_SCHEMA_VERSION + 1
        with pytest.raises(ReproError, match="schema_version"):
            decode_query(wire)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError, match="unknown wire query kind"):
            decode_query({"wire_schema": 1, "kind": "teleport"})

    def test_unknown_spec_field_rejected(self):
        wire = encode_query(RunQuery(name="lemma7"))
        wire["spec"]["turbo"] = True
        with pytest.raises(ReproError, match="turbo"):
            decode_query(wire)

    def test_malformed_points_rejected(self):
        with pytest.raises(ReproError, match="points"):
            decode_query({"wire_schema": 1, "kind": "symmetricity",
                          "points": {"x": 1}})


class TestQueryKey:
    def test_equal_queries_share_a_key(self):
        a = SymmetricityQuery(points=OCTAHEDRON)
        b = SymmetricityQuery(points=OCTAHEDRON)
        assert query_key(a) == query_key(b)

    def test_exact_translation_and_scale_coalesce(self):
        # The canonicalization is similarity-invariant for exactly
        # representable transforms: same congruence class, same key,
        # one computation.
        moved = tuple(tuple(c * 4.0 + 7.0 for c in row)
                      for row in OCTAHEDRON)
        assert query_key(SymmetricityQuery(points=moved)) == \
            query_key(SymmetricityQuery(points=OCTAHEDRON))

    def test_different_configurations_differ(self):
        other = tuple(tuple(row) for row in OCTAHEDRON[:-1]) + \
            ((0.0, 0.0, -2.0),)
        assert query_key(SymmetricityQuery(points=other)) != \
            query_key(SymmetricityQuery(points=OCTAHEDRON))

    def test_multiset_flag_splits_the_key(self):
        assert query_key(SymmetricityQuery(points=OCTAHEDRON)) != \
            query_key(SymmetricityQuery(points=OCTAHEDRON,
                                        multiset=True))

    def test_kind_prefixes_differ(self):
        f = FormabilityQuery(initial="cube", target="cube")
        s = SymmetricityQuery(points="cube")
        assert query_key(f).startswith("formability:")
        assert query_key(s).startswith("symmetricity:")
        assert query_key(f) != query_key(s)

    def test_formability_sides_are_ordered(self):
        ab = FormabilityQuery(initial="cube", target="octagon")
        ba = FormabilityQuery(initial="octagon", target="cube")
        assert query_key(ab) != query_key(ba)

    def test_run_key_tracks_resolved_spec(self):
        base = RunQuery(name="lemma7", spec=ExperimentSpec(trials=2))
        same = RunQuery(name="lemma7", spec=ExperimentSpec(trials=2))
        other_seed = RunQuery(name="lemma7",
                              spec=ExperimentSpec(trials=2, seed=1))
        assert query_key(base) == query_key(same)
        assert query_key(base) != query_key(other_seed)

    def test_run_key_ignores_unconsumed_fields(self):
        # theorem11's driver consumes only seed/jobs; `trials` never
        # enters its resolved spec record, so it cannot split the key.
        a = RunQuery(name="theorem11", spec=ExperimentSpec(trials=5))
        b = RunQuery(name="theorem11", spec=ExperimentSpec(trials=9))
        assert query_key(a) == query_key(b)
