"""The query server: byte-identity, coalescing, backpressure,
deadlines, and leak-free drain."""

import asyncio
import http.client
import json
import threading
import time

import pytest

from repro.api import (
    FormabilityQuery,
    RunQuery,
    SymmetricityQuery,
    as_points,
    evaluate_query,
)
from repro.errors import ServiceError
from repro.obs import metrics as _metrics
from repro.serve.client import ServeClient
from repro.serve.protocol import canonical_result_text
from repro.serve.server import QueryServer, ServeConfig

OCTAHEDRON = as_points([[1.0, 0, 0], [0, 1, 0], [0, 0, 1],
                        [-1.0, 0, 0], [0, -1, 0], [0, 0, -1]])


class _ServerThread:
    """Run one QueryServer on a private loop in a daemon thread."""

    def __init__(self, config, dispatcher=None):
        self._config = config
        self._dispatcher = dispatcher
        self._started = threading.Event()
        self._stop = None
        self.loop = None
        self.server = None
        self.error = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        async def main():
            self.server = QueryServer(self._config, self._dispatcher)
            self._stop = asyncio.Event()
            self.loop = asyncio.get_running_loop()
            try:
                await self.server.start()
            finally:
                self._started.set()
            await self._stop.wait()
            await self.server.drain()

        try:
            asyncio.run(main())
        except BaseException as exc:  # surfaced in stop()
            self.error = exc
            self._started.set()

    def __enter__(self):
        self._thread.start()
        assert self._started.wait(timeout=30), "server never started"
        if self.error is not None:
            raise self.error
        return self

    def __exit__(self, *exc):
        self.stop()

    @property
    def address(self):
        return self.server.address

    def stop(self):
        if self.loop is not None and self._stop is not None and \
                not self._stop.is_set():
            self.loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)
        assert not self._thread.is_alive(), "server failed to drain"
        if self.error is not None:
            raise self.error


def _serve_delta(before, after):
    deltas = {}
    for name, value in after.items():
        if name.startswith("serve."):
            deltas[name] = value - before.get(name, 0)
    return {name: value for name, value in deltas.items() if value}


class TestByteIdentity:
    def test_concurrent_clients_match_direct_api(self):
        queries = [
            FormabilityQuery(initial="cube", target="octagon"),
            FormabilityQuery(initial="octagon", target="cube"),
            SymmetricityQuery(points="icosahedron"),
            SymmetricityQuery(points=OCTAHEDRON),
        ]
        expected = [canonical_result_text(evaluate_query(q))
                    for q in queries]
        with _ServerThread(ServeConfig(queue_depth=16)) as st:
            host, port = st.address
            results = [None] * len(queries)

            def ask(i):
                with ServeClient(host, port) as client:
                    results[i] = canonical_result_text(
                        client.query(queries[i]))

            threads = [threading.Thread(target=ask, args=(i,))
                       for i in range(len(queries))]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
        assert results == expected

    def test_run_query_round_trip(self):
        from repro.api import ExperimentSpec

        query = RunQuery(name="lemma7", spec=ExperimentSpec(trials=2))
        expected = canonical_result_text(evaluate_query(query))
        with _ServerThread(ServeConfig()) as st:
            host, port = st.address
            with ServeClient(host, port) as client:
                assert canonical_result_text(client.query(query)) == \
                    expected

    def test_invalid_query_is_422(self):
        with _ServerThread(ServeConfig()) as st:
            host, port = st.address
            with ServeClient(host, port) as client:
                with pytest.raises(ServiceError) as info:
                    client.query(SymmetricityQuery(points="noshape"))
        assert info.value.status == 422

    def test_unknown_path_and_bad_json(self):
        with _ServerThread(ServeConfig()) as st:
            host, port = st.address
            conn = http.client.HTTPConnection(host, port, timeout=30)
            conn.request("GET", "/nope")
            response = conn.getresponse()
            assert response.status == 404
            response.read()
            conn.request("POST", "/v1/query", body=b"{not json",
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            assert response.status == 400
            assert "JSON" in json.loads(response.read())["error"]
            conn.close()


class _GatedDispatcher:
    """Holds every dispatch until ``expected`` requests are admitted,
    so a concurrent burst provably overlaps in flight."""

    def __init__(self, expected):
        self.expected = expected
        self.server = None  # bound by the test after construction
        self.dispatches = 0

    async def dispatch(self, task_id, wire):
        from repro.serve.dispatch import InlineDispatcher

        self.dispatches += 1
        while self.server._admitted < self.expected:
            await asyncio.sleep(0.005)
        return await InlineDispatcher().dispatch(task_id, wire)

    def close(self):
        pass


class TestCoalescing:
    def test_equivalent_burst_is_one_computation(self):
        burst = 6
        gate = _GatedDispatcher(expected=burst)
        before = _metrics.registry().snapshot()["counters"]
        with _ServerThread(ServeConfig(queue_depth=2 * burst,
                                       deadline_s=120),
                           dispatcher=gate) as st:
            gate.server = st.server
            host, port = st.address
            results = [None] * burst

            def ask(i):
                # Same congruence class at an exact offset: same key.
                points = tuple(tuple(c + float(i % 2) for c in row)
                               for row in OCTAHEDRON)
                with ServeClient(host, port) as client:
                    results[i] = client.query(
                        SymmetricityQuery(points=points))

            threads = [threading.Thread(target=ask, args=(i,))
                       for i in range(burst)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
        after = _metrics.registry().snapshot()["counters"]
        delta = _serve_delta(before, after)
        # The pinned contract: one dispatch, everyone else coalesces.
        assert gate.dispatches == 1
        assert delta["serve.dispatched"] == 1
        assert delta["serve.coalesced"] == burst - 1
        assert delta["serve.completed"] == burst
        texts = {canonical_result_text(r) for r in results}
        assert len(texts) == 1
        coalesced = [r.cache["served"]["coalesced"] for r in results]
        assert sorted(coalesced) == [False] + [True] * (burst - 1)


class _SlowDispatcher:
    def __init__(self, delay_s):
        self.delay_s = delay_s

    async def dispatch(self, task_id, wire):
        await asyncio.sleep(self.delay_s)
        return {"status": 200,
                "result": {"wire_schema": 1, "schema_version": 1,
                           "kind": "symmetricity", "verdict": "T",
                           "groups": {}, "explanation": "",
                           "payload": {}, "cache": {}, "timing": {}}}

    def close(self):
        pass


class TestBackpressureAndDeadlines:
    def test_queue_depth_exhaustion_is_429(self):
        before = _metrics.registry().snapshot()["counters"]
        with _ServerThread(ServeConfig(queue_depth=1, deadline_s=30),
                           dispatcher=_SlowDispatcher(1.5)) as st:
            host, port = st.address
            first_status = {}

            def slow_ask():
                with ServeClient(host, port) as client:
                    result = client.query(
                        SymmetricityQuery(points="cube"))
                    first_status["verdict"] = result.verdict

            t = threading.Thread(target=slow_ask)
            t.start()
            time.sleep(0.4)  # let the first request occupy the slot
            with ServeClient(host, port) as client:
                with pytest.raises(ServiceError) as info:
                    client.query(SymmetricityQuery(points="octagon"))
            assert info.value.status == 429
            t.join(timeout=60)
        assert first_status["verdict"] == "T"
        after = _metrics.registry().snapshot()["counters"]
        assert _serve_delta(before, after)["serve.rejected"] == 1

    def test_deadline_is_504_and_computation_survives(self):
        before = _metrics.registry().snapshot()["counters"]
        with _ServerThread(ServeConfig(queue_depth=4, deadline_s=0.3),
                           dispatcher=_SlowDispatcher(1.2)) as st:
            host, port = st.address
            with ServeClient(host, port) as client:
                with pytest.raises(ServiceError) as info:
                    client.query(SymmetricityQuery(points="cube"))
            assert info.value.status == 504
            # The shielded computation still completes and fills the
            # in-flight slot's cache entry; wait for it to finish so
            # drain has nothing to cut short.
            time.sleep(1.2)
        after = _metrics.registry().snapshot()["counters"]
        assert _serve_delta(before, after)["serve.timeouts"] == 1

    def test_draining_server_refuses_new_queries(self):
        with _ServerThread(ServeConfig()) as st:
            host, port = st.address
            st.server._draining = True
            with ServeClient(host, port) as client:
                with pytest.raises(ServiceError) as info:
                    client.query(SymmetricityQuery(points="cube"))
            assert info.value.status == 503
            st.server._draining = False


class TestPoolDrain:
    def test_pool_serving_leaves_no_workers_or_segments(self):
        import multiprocessing

        from repro.perf import blocks

        with _ServerThread(ServeConfig(workers=1,
                                       queue_depth=8)) as st:
            host, port = st.address
            with ServeClient(host, port) as client:
                for offset in (0.0, 3.0):
                    points = tuple(tuple(c + offset for c in row)
                                   for row in OCTAHEDRON)
                    result = client.query(
                        SymmetricityQuery(points=points))
                    assert result.verdict == "O"
        # Drain happened in __exit__: pool workers are joined and every
        # per-request arena was closed on outcome delivery.
        assert blocks._LOCAL == {}
        for child in multiprocessing.active_children():
            child.join(timeout=5)
            assert not child.is_alive()

    def test_health_and_metrics_endpoints(self):
        with _ServerThread(ServeConfig(queue_depth=7)) as st:
            host, port = st.address
            with ServeClient(host, port) as client:
                health = client.health()
                assert health["status"] == "ok"
                assert health["queue_depth"] == 7
                client.query(SymmetricityQuery(points="cube"))
                metrics = client.metrics()
        assert metrics["serve"]["counters"]["serve.completed"] >= 1
        assert "cache" in metrics
