"""The typed query surface of ``repro.api``: records, evaluation,
schema versioning, and the deprecation shims."""

import warnings

import pytest

from repro.api import (
    API_SCHEMA_VERSION,
    ExperimentSpec,
    FormabilityQuery,
    RunQuery,
    SymmetricityQuery,
    as_points,
    evaluate_query,
    resolved_spec_record,
    run_experiment,
    spec_as_dict,
    spec_record,
)
from repro.errors import ReproError


class TestQueryRecords:
    def test_records_are_frozen_and_versioned(self):
        query = FormabilityQuery(initial="cube", target="octagon")
        assert query.schema_version == API_SCHEMA_VERSION
        with pytest.raises(AttributeError):
            query.initial = "tetrahedron"

    def test_as_points_canonicalizes(self):
        points = as_points([[1, 2, 3], [4, 5, 6.5]])
        assert points == ((1.0, 2.0, 3.0), (4.0, 5.0, 6.5))
        assert as_points("cube") == "cube"
        with pytest.raises(ReproError, match="points"):
            as_points(42)

    def test_spec_carries_schema_version(self):
        assert ExperimentSpec().schema_version == API_SCHEMA_VERSION
        assert spec_record(ExperimentSpec())["schema_version"] == \
            API_SCHEMA_VERSION
        record = resolved_spec_record("lemma7", ExperimentSpec())
        assert record["schema_version"] == API_SCHEMA_VERSION


class TestEvaluateQuery:
    def test_formable_pair(self):
        result = evaluate_query(FormabilityQuery(initial="cube",
                                                 target="octagon"))
        assert result.kind == "formability"
        assert result.verdict == "formable"
        assert result.groups["rho_initial"] == ["D4"]
        assert result.groups["blocking"] == []
        assert "Theorem 1.1" in result.explanation
        assert result.payload["n"] == 8

    def test_unformable_pair_names_the_blocker(self):
        result = evaluate_query(FormabilityQuery(initial="octagon",
                                                 target="cube"))
        assert result.verdict == "unformable"
        assert result.groups["blocking"] == ["C8"]

    def test_symmetricity_classification(self):
        result = evaluate_query(SymmetricityQuery(
            points="icosahedron"))
        assert result.kind == "symmetricity"
        assert result.verdict == "I"
        assert result.groups["gamma"] == "I"
        assert result.groups["rho_maximal"] == ["D3", "T"]
        assert result.payload["gamma_order"] == 60

    def test_run_query_matches_run_experiment(self):
        spec = ExperimentSpec(trials=2)
        result = evaluate_query(RunQuery(name="lemma7", spec=spec))
        direct = run_experiment("lemma7", spec)
        assert result.verdict == "completed"
        assert result.payload["row_count"] == len(direct.rows)
        assert result.payload["rows_sha256"] == \
            direct.manifest["rows"]["sha256"]
        assert result.payload["spec"] == \
            resolved_spec_record("lemma7", spec)

    def test_deterministic_view_is_stable(self):
        query = SymmetricityQuery(points="cube")
        first = evaluate_query(query).deterministic_view()
        second = evaluate_query(query).deterministic_view()
        assert first == second
        assert "timing" not in first and "cache" not in first

    def test_sidecars_are_present_but_separate(self):
        result = evaluate_query(SymmetricityQuery(points="cube"))
        assert "elapsed_ms" in result.timing
        assert "enabled" in result.cache

    def test_newer_schema_rejected(self):
        query = SymmetricityQuery(
            points="cube", schema_version=API_SCHEMA_VERSION + 1)
        with pytest.raises(ReproError, match="schema_version"):
            evaluate_query(query)

    def test_unknown_pattern_raises(self):
        with pytest.raises(ReproError):
            evaluate_query(SymmetricityQuery(points="dodecaplex"))


class TestDeprecationShims:
    def test_spec_as_dict_warns_and_drops_version(self):
        spec = ExperimentSpec(trials=3)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = spec_as_dict(spec)
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        assert "schema_version" not in legacy
        modern = spec_record(spec)
        modern.pop("schema_version")
        assert legacy == modern
