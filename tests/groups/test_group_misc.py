"""Additional tests for RotationGroup methods and GroupSpec."""

import numpy as np
import pytest

from repro.errors import GroupError
from repro.geometry.rotations import rotation_about_axis
from repro.groups.catalog import (
    cyclic_group,
    dihedral_group,
    octahedral_group,
    tetrahedral_group,
)
from repro.groups.group import GroupKind, GroupSpec, RotationGroup


class TestGroupSpec:
    def test_orders(self):
        assert GroupSpec.parse("C7").order == 7
        assert GroupSpec.parse("D7").order == 14
        assert GroupSpec.parse("T").order == 12
        assert GroupSpec.parse("O").order == 24
        assert GroupSpec.parse("I").order == 60

    def test_str_round_trip(self):
        for text in ["C1", "C12", "D2", "D9", "T", "O", "I"]:
            assert str(GroupSpec.parse(text)) == text

    def test_parse_errors(self):
        for bad in ["", "X3", "C0", "D1", "T2", "C-1", "Dx"]:
            with pytest.raises(GroupError):
                GroupSpec.parse(bad)

    def test_is_2d_3d(self):
        assert GroupSpec.parse("C5").is_2d
        assert GroupSpec.parse("D5").is_2d
        assert GroupSpec.parse("T").is_3d
        assert not GroupSpec.parse("T").is_2d

    def test_trivial(self):
        assert GroupSpec.parse("C1").is_trivial
        assert not GroupSpec.parse("C2").is_trivial

    def test_sortable(self):
        specs = [GroupSpec.parse(t) for t in ["I", "C1", "D3", "T"]]
        ordered = sorted(specs)
        assert [str(s) for s in ordered] == ["C1", "D3", "T", "I"]


class TestRotationGroupMethods:
    def test_dedupes_elements(self):
        mats = [np.eye(3), np.eye(3),
                rotation_about_axis([0, 0, 1], np.pi)]
        group = RotationGroup(mats)
        assert group.order == 2

    def test_identity_added_if_missing(self):
        group = RotationGroup([rotation_about_axis([0, 0, 1], np.pi)])
        assert group.order == 2
        assert group.contains_element(np.eye(3))

    def test_axes_of_fold(self):
        group = octahedral_group()
        assert len(group.axes_of_fold(4)) == 3
        assert len(group.axes_of_fold(7)) == 0

    def test_axis_for_line(self):
        group = tetrahedral_group()
        axis = group.axis_for_line([2.0, 2.0, 2.0])
        assert axis is not None and axis.fold == 3
        assert group.axis_for_line([1.0, 0.3, 0.0]) is None

    def test_elements_about_axis(self):
        group = octahedral_group()
        about_z = group.elements_about_axis([0, 0, 1])
        assert len(about_z) == 3  # 90, 180, 270 degrees

    def test_principal_axis_cyclic(self):
        group = cyclic_group(5)
        assert group.principal_axis is not None
        assert group.principal_axis.fold == 5

    def test_principal_axis_d2_is_none(self):
        assert dihedral_group(2).principal_axis is None

    def test_principal_axis_polyhedral_is_none(self):
        assert tetrahedral_group().principal_axis is None

    def test_with_axes_replaces_metadata(self):
        group = cyclic_group(3)
        marked = group.with_axes(
            [a.with_occupied(True) for a in group.axes])
        assert all(a.occupied for a in marked.axes)
        assert marked.spec == group.spec

    def test_repr(self):
        assert "C4" in repr(cyclic_group(4))

    def test_orbit_multiset_dedup(self):
        group = dihedral_group(3)
        # A point on the principal axis has a 2-point orbit.
        assert len(group.orbit([0, 0, 1.5])) == 2
