"""Tests for axis utilities, infinite groups, and tolerance helpers."""

import numpy as np
import pytest

from repro.geometry.tolerance import Tolerance, canonical_round, isclose, iszero
from repro.groups.axes import RotationAxis, axis_line_key, canonical_direction
from repro.groups.infinite import InfiniteGroupKind, detect_collinear_kind


class TestCanonicalDirection:
    def test_unit_length(self):
        assert np.isclose(np.linalg.norm(canonical_direction([3, 4, 0])),
                          1.0)

    def test_sign_convention(self):
        a = canonical_direction([0, 0, 1])
        b = canonical_direction([0, 0, -1])
        assert np.allclose(a, b)

    def test_first_significant_coordinate_positive(self):
        d = canonical_direction([-1, 2, 3])
        assert d[0] > 0


class TestAxisLineKey:
    def test_opposite_directions_same_key(self):
        assert axis_line_key([1, 1, 0]) == axis_line_key([-1, -1, 0])

    def test_different_lines_differ(self):
        assert axis_line_key([1, 0, 0]) != axis_line_key([0, 1, 0])

    def test_hashable(self):
        keys = {axis_line_key([1, 0, 0]), axis_line_key([0, 1, 0])}
        assert len(keys) == 2


class TestRotationAxis:
    def test_same_line(self):
        axis = RotationAxis(direction=np.array([0.0, 0.0, 1.0]), fold=4)
        assert axis.same_line([0, 0, -2])
        assert not axis.same_line([1, 0, 0])

    def test_with_occupied(self):
        axis = RotationAxis(direction=np.array([0.0, 0.0, 1.0]), fold=4)
        assert not axis.occupied
        assert axis.with_occupied(True).occupied

    def test_with_direction(self):
        axis = RotationAxis(direction=np.array([0.0, 0.0, 1.0]), fold=3,
                            oriented=True)
        flipped = axis.with_direction([0, 0, -1])
        assert np.allclose(flipped.direction, [0, 0, -1])
        assert flipped.fold == 3 and flipped.oriented


class TestInfiniteKinds:
    def test_symmetric_multiset(self):
        rel = [np.array([0, 0, 1.0]), np.array([0, 0, -1.0])]
        assert detect_collinear_kind(rel, [2, 2]) is InfiniteGroupKind.D_INF

    def test_asymmetric_multiplicities(self):
        rel = [np.array([0, 0, 1.0]), np.array([0, 0, -1.0])]
        assert detect_collinear_kind(rel, [1, 2]) is InfiniteGroupKind.C_INF

    def test_asymmetric_positions(self):
        rel = [np.array([0, 0, 1.0]), np.array([0, 0, -0.5]),
               np.array([0, 0, -0.5])]
        assert detect_collinear_kind(rel, [1, 1, 1]) is \
            InfiniteGroupKind.C_INF


class TestTolerance:
    def test_isclose_and_iszero(self):
        assert isclose(1.0, 1.0 + 1e-9)
        assert not isclose(1.0, 1.001)
        assert iszero(1e-9)
        assert not iszero(1e-3)

    def test_relative_tolerance_kicks_in(self):
        tol = Tolerance(abs_tol=1e-9, rel_tol=1e-6)
        assert tol.close(1e6, 1e6 + 0.5)
        assert not tol.close(1e6, 1e6 + 10.0)

    def test_scaled(self):
        tol = Tolerance(abs_tol=1e-6).scaled(100.0)
        assert tol.abs_tol == pytest.approx(1e-4)

    def test_canonical_round_kills_negative_zero(self):
        rounded = canonical_round(np.array([-1e-12, 1.0, -0.0]))
        assert str(rounded[0]) == "0.0"
        assert str(rounded[2]) == "0.0"

    def test_canonical_round_scalar(self):
        assert canonical_round(1.23456789, 4) == pytest.approx(1.2346)


class TestLongitudeWraparoundRegression:
    def test_meridian_longitude_is_zero_not_two_pi(self):
        """Regression: atan2 noise of -1e-16 must encode as longitude
        0.0, not 6.283185 — observers disagreed on orbit order
        otherwise (found via cube -> octagon under random frames)."""
        from repro.core.configuration import Configuration
        from repro.core.local_views import local_view
        from repro.geometry.rotations import random_rotation

        rng = np.random.default_rng(0)
        points = [np.asarray(p, dtype=float)
                  for p in __import__("repro.patterns.library",
                                      fromlist=["named_pattern"]
                                      ).named_pattern("cube")]
        config = Configuration(points)
        rot = random_rotation(rng)
        moved = Configuration([rot @ p for p in points])
        for i in range(8):
            assert local_view(config, i) == local_view(moved, i)
