"""Tests for classification, the ⪯ relation, and subgroup enumeration."""

from collections import Counter

import pytest

from repro.errors import GroupError
from repro.groups.catalog import (
    cyclic_group,
    dihedral_group,
    icosahedral_group,
    octahedral_group,
    tetrahedral_group,
)
from repro.groups.group import GroupSpec
from repro.groups.subgroups import (
    classify_elements,
    enumerate_concrete_subgroups,
    is_abstract_subgroup,
    maximal_elements,
    proper_abstract_subgroups,
)


def spec(text: str) -> GroupSpec:
    return GroupSpec.parse(text)


class TestClassification:
    @pytest.mark.parametrize("group", [
        cyclic_group(1), cyclic_group(4), cyclic_group(9),
        dihedral_group(2), dihedral_group(3), dihedral_group(8),
        tetrahedral_group(), octahedral_group(), icosahedral_group(),
    ], ids=lambda g: str(g.spec))
    def test_round_trip(self, group):
        assert classify_elements(group.elements) == group.spec

    def test_rejects_non_group(self):
        from repro.geometry.rotations import rotation_about_axis
        import numpy as np

        elems = [np.eye(3), rotation_about_axis([0, 0, 1], 1.0),
                 rotation_about_axis([1, 0, 0], 2.0)]
        with pytest.raises(GroupError):
            classify_elements(elems)


class TestAbstractSubgroupRelation:
    def test_reflexive(self):
        for text in ["C1", "C3", "D4", "T", "O", "I"]:
            assert is_abstract_subgroup(spec(text), spec(text))

    def test_trivial_below_everything(self):
        for text in ["C2", "D2", "T", "O", "I"]:
            assert is_abstract_subgroup(spec("C1"), spec(text))

    def test_cyclic_divisibility(self):
        assert is_abstract_subgroup(spec("C2"), spec("C6"))
        assert is_abstract_subgroup(spec("C3"), spec("C6"))
        assert not is_abstract_subgroup(spec("C4"), spec("C6"))

    def test_cyclic_in_dihedral(self):
        assert is_abstract_subgroup(spec("C3"), spec("D3"))
        assert is_abstract_subgroup(spec("C2"), spec("D5"))  # secondary
        assert not is_abstract_subgroup(spec("C4"), spec("D6"))

    def test_dihedral_in_dihedral(self):
        assert is_abstract_subgroup(spec("D2"), spec("D4"))
        assert is_abstract_subgroup(spec("D3"), spec("D6"))
        assert not is_abstract_subgroup(spec("D4"), spec("D6"))

    def test_paper_examples(self):
        assert is_abstract_subgroup(spec("T"), spec("O"))
        assert is_abstract_subgroup(spec("T"), spec("I"))
        assert not is_abstract_subgroup(spec("O"), spec("I"))

    def test_d3_not_in_t(self):
        # Explicitly noted in the paper (Section 3.1).
        assert not is_abstract_subgroup(spec("D3"), spec("T"))

    def test_polyhedral_subgroup_sets(self):
        assert is_abstract_subgroup(spec("D4"), spec("O"))
        assert is_abstract_subgroup(spec("D5"), spec("I"))
        assert not is_abstract_subgroup(spec("C4"), spec("I"))
        assert not is_abstract_subgroup(spec("C5"), spec("O"))

    def test_transitivity_sampled(self):
        chain = ["C1", "C2", "D2", "T", "O"]
        for i in range(len(chain)):
            for j in range(i, len(chain)):
                assert is_abstract_subgroup(spec(chain[i]), spec(chain[j]))


class TestProperSubgroups:
    def test_cyclic(self):
        subs = {str(s) for s in proper_abstract_subgroups(spec("C6"))}
        assert subs == {"C1", "C2", "C3"}

    def test_dihedral(self):
        subs = {str(s) for s in proper_abstract_subgroups(spec("D6"))}
        assert subs == {"C1", "C2", "C3", "C6", "D2", "D3"}

    def test_tetrahedral(self):
        subs = {str(s) for s in proper_abstract_subgroups(spec("T"))}
        assert subs == {"C1", "C2", "C3", "D2"}

    def test_icosahedral(self):
        subs = {str(s) for s in proper_abstract_subgroups(spec("I"))}
        assert subs == {"C1", "C2", "C3", "C5", "D2", "D3", "D5", "T"}


class TestConcreteEnumeration:
    def test_tetrahedral_count(self):
        # A4 has exactly 10 subgroups.
        subs = enumerate_concrete_subgroups(tetrahedral_group())
        assert len(subs) == 10
        counts = Counter(str(s.spec) for s in subs)
        assert counts == {"C1": 1, "C2": 3, "C3": 4, "D2": 1, "T": 1}

    def test_octahedral_count(self):
        # S4 has exactly 30 subgroups.
        subs = enumerate_concrete_subgroups(octahedral_group())
        assert len(subs) == 30
        counts = Counter(str(s.spec) for s in subs)
        assert counts == {"C1": 1, "C2": 9, "C3": 4, "C4": 3, "D2": 4,
                          "D3": 4, "D4": 3, "T": 1, "O": 1}

    def test_icosahedral_count(self):
        # A5 has exactly 59 subgroups.
        subs = enumerate_concrete_subgroups(icosahedral_group())
        assert len(subs) == 59
        counts = Counter(str(s.spec) for s in subs)
        assert counts == {"C1": 1, "C2": 15, "C3": 10, "C5": 6, "D2": 5,
                          "D3": 10, "D5": 6, "T": 5, "I": 1}

    def test_cyclic_structured(self):
        subs = enumerate_concrete_subgroups(cyclic_group(12))
        assert sorted(s.order for s in subs) == [1, 2, 3, 4, 6, 12]

    def test_dihedral_structured(self):
        subs = enumerate_concrete_subgroups(dihedral_group(6))
        counts = Counter(str(s.spec) for s in subs)
        # D6: cyclic C1..C6 about principal, six secondary C2s, and
        # dihedral copies: 3x D2, 2x D3, 1x D6.
        assert counts["C2"] == 7  # principal C2 + 6 secondary C2s
        assert counts["D2"] == 3
        assert counts["D3"] == 2
        assert counts["D6"] == 1

    def test_all_enumerated_are_concrete_subgroups(self):
        group = octahedral_group()
        for sub in enumerate_concrete_subgroups(group):
            assert sub.is_concrete_subgroup_of(group)


class TestMaximalElements:
    def test_removes_dominated(self):
        specs = [spec(t) for t in ["C1", "C2", "C3", "D2", "D3", "T"]]
        assert {str(s) for s in maximal_elements(specs)} == {"D3", "T"}

    def test_keeps_incomparable(self):
        specs = [spec(t) for t in ["C4", "C3", "T"]]
        assert {str(s) for s in maximal_elements(specs)} == {"C4", "T"}

    def test_single(self):
        assert maximal_elements([spec("C1")]) == [spec("C1")]
