"""Tests for γ(P) detection on point (multi)sets."""

import numpy as np
import pytest

from repro.errors import DetectionError
from repro.geometry.rotations import random_rotation
from repro.geometry.transforms import Similarity
from repro.groups.detection import detect_rotation_group
from repro.groups.infinite import InfiniteGroupKind
from repro.patterns import polyhedra
from repro.patterns.library import compose_shells, named_pattern
from tests.conftest import generic_cloud


class TestPlatonicDetection:
    @pytest.mark.parametrize("name,expected", [
        ("tetrahedron", "T"),
        ("cube", "O"),
        ("octahedron", "O"),
        ("cuboctahedron", "O"),
        ("dodecahedron", "I"),
        ("icosahedron", "I"),
        ("icosidodecahedron", "I"),
    ])
    def test_catalog_shapes(self, name, expected):
        report = detect_rotation_group(named_pattern(name))
        assert report.kind == "finite"
        assert str(report.spec) == expected

    @pytest.mark.parametrize("name,expected", [
        ("cube", "O"), ("icosahedron", "I"), ("tetrahedron", "T"),
    ])
    def test_invariance_under_similarity(self, rng, name, expected):
        pts = named_pattern(name)
        sim = Similarity.random(rng)
        report = detect_rotation_group(sim.apply_all(pts))
        assert str(report.spec) == expected


class TestCyclicDihedralDetection:
    @pytest.mark.parametrize("k", [3, 4, 5, 7])
    def test_pyramid_is_cyclic(self, k):
        report = detect_rotation_group(polyhedra.pyramid(k))
        assert str(report.spec) == f"C{k}"

    @pytest.mark.parametrize("k", [3, 4, 6, 9])
    def test_polygon_is_dihedral(self, k):
        report = detect_rotation_group(
            polyhedra.regular_polygon_pattern(k))
        assert str(report.spec) == f"D{k}"

    @pytest.mark.parametrize("l", [3, 5, 6])
    def test_prism_is_dihedral(self, l):
        report = detect_rotation_group(polyhedra.prism(l))
        assert str(report.spec) == f"D{l}"

    @pytest.mark.parametrize("l", [3, 4, 5])
    def test_antiprism_is_dihedral(self, l):
        report = detect_rotation_group(polyhedra.antiprism(l))
        assert str(report.spec) == f"D{l}"

    def test_square_is_d4(self):
        report = detect_rotation_group(
            polyhedra.regular_polygon_pattern(4))
        assert str(report.spec) == "D4"

    def test_generic_cloud_is_c1(self):
        report = detect_rotation_group(generic_cloud(9, seed=11))
        assert str(report.spec) == "C1"

    def test_twisted_prism_pair_is_cyclic(self):
        # Two parallel squares with an irrational twist and different
        # radii: only C4 about the axis survives.
        from repro.geometry.polygons import regular_polygon

        pts = regular_polygon(4, radius=1.0, center=(0, 0, -1))
        pts += regular_polygon(4, radius=0.7, center=(0, 0, 1), phase=0.4)
        report = detect_rotation_group(pts)
        assert str(report.spec) == "C4"


class TestOccupiedAxes:
    def test_cube_occupies_threefold_axes(self, cube):
        report = detect_rotation_group(cube)
        occupied = sorted((a.fold, a.occupied) for a in report.group.axes)
        assert all(occ for fold, occ in occupied if fold == 3)
        assert not any(occ for fold, occ in occupied if fold in (2, 4))

    def test_octahedron_occupies_fourfold(self):
        report = detect_rotation_group(named_pattern("octahedron"))
        by_fold = {a.fold: a.occupied for a in report.group.axes}
        # All axes of one fold share occupancy for transitive sets.
        assert by_fold[4] is True

    def test_free_orbit_occupies_nothing(self):
        from repro.groups.catalog import octahedral_group
        from repro.patterns.orbits import transitive_set

        pts = transitive_set(octahedral_group(), mu=1)
        report = detect_rotation_group(pts)
        assert str(report.spec) == "O"
        assert not any(a.occupied for a in report.group.axes)

    def test_center_occupied_flag(self):
        pts = named_pattern("cube") + [np.zeros(3)]
        report = detect_rotation_group(pts)
        assert report.center_occupied
        assert all(a.occupied for a in report.group.axes)


class TestDegenerateAndCollinear:
    def test_all_same_point(self):
        report = detect_rotation_group([np.ones(3)] * 4)
        assert report.kind == "degenerate"

    def test_symmetric_line_is_d_inf(self):
        pts = [np.array([0, 0, z], dtype=float) for z in (-2, -1, 1, 2)]
        report = detect_rotation_group(pts)
        assert report.kind == "collinear"
        assert report.infinite_kind is InfiniteGroupKind.D_INF

    def test_asymmetric_line_is_c_inf(self):
        pts = [np.array([0, 0, z], dtype=float) for z in (-2, -1, 1, 4)]
        report = detect_rotation_group(pts)
        assert report.kind == "collinear"
        assert report.infinite_kind is InfiniteGroupKind.C_INF

    def test_line_direction_reported(self):
        pts = [np.array([z, z, 0], dtype=float) for z in (-1, 0.5, 2)]
        report = detect_rotation_group(pts)
        expected = np.array([1.0, 1.0, 0.0]) / np.sqrt(2)
        assert abs(abs(float(np.dot(report.line_direction, expected)))
                   - 1.0) < 1e-9

    def test_empty_raises(self):
        with pytest.raises(DetectionError):
            detect_rotation_group([])


class TestMultisets:
    def test_multiplicity_breaks_symmetry(self, cube):
        # Doubling one vertex kills every rotation that moves it.
        pts = cube + [cube[0]]
        report = detect_rotation_group(pts)
        assert str(report.spec) == "C3"  # rotations fixing that vertex

    def test_uniform_multiplicity_preserves_group(self, cube):
        report = detect_rotation_group(cube + cube)
        assert str(report.spec) == "O"
        assert report.has_multiplicity

    def test_distinct_points_listed(self, cube):
        report = detect_rotation_group(cube + cube[:2])
        assert len(report.distinct_points) == 8
        assert sorted(report.multiplicities) == [1] * 6 + [2] * 2


class TestCompositeConfigurations:
    def test_cube_plus_octahedron(self):
        pts = compose_shells(named_pattern("octahedron"),
                             named_pattern("cube"))
        report = detect_rotation_group(pts)
        assert str(report.spec) == "O"

    def test_shells_of_different_groups(self):
        # A tetrahedron shell inside a cube shell: common group is T.
        pts = compose_shells(named_pattern("tetrahedron"),
                             named_pattern("cube"))
        report = detect_rotation_group(pts)
        assert str(report.spec) == "T"

    def test_random_rotation_of_composite(self, rng):
        pts = compose_shells(named_pattern("octahedron"),
                             named_pattern("cube"))
        rot = random_rotation(rng)
        report = detect_rotation_group([rot @ p for p in pts])
        assert str(report.spec) == "O"
