"""Tests for the standard-frame group constructors."""

import numpy as np
import pytest

from repro.errors import GroupError
from repro.geometry.rotations import is_rotation_matrix
from repro.groups.catalog import (
    cyclic_group,
    dihedral_group,
    group_from_spec,
    icosahedral_group,
    identity_group,
    octahedral_group,
    tetrahedral_group,
)
from repro.groups.group import GroupKind, GroupSpec, element_key


ALL_GROUPS = [
    cyclic_group(1), cyclic_group(2), cyclic_group(5),
    dihedral_group(2), dihedral_group(3), dihedral_group(6),
    tetrahedral_group(), octahedral_group(), icosahedral_group(),
]


class TestOrders:
    @pytest.mark.parametrize("k", [1, 2, 3, 7, 12])
    def test_cyclic_order(self, k):
        assert cyclic_group(k).order == k

    @pytest.mark.parametrize("l", [2, 3, 5, 9])
    def test_dihedral_order(self, l):
        assert dihedral_group(l).order == 2 * l

    def test_polyhedral_orders(self):
        assert tetrahedral_group().order == 12
        assert octahedral_group().order == 24
        assert icosahedral_group().order == 60


class TestGroupClosureAndValidity:
    @pytest.mark.parametrize("group", ALL_GROUPS,
                             ids=lambda g: str(g.spec))
    def test_elements_are_rotations(self, group):
        for mat in group.elements:
            assert is_rotation_matrix(mat)

    @pytest.mark.parametrize("group", ALL_GROUPS,
                             ids=lambda g: str(g.spec))
    def test_closure(self, group):
        keys = {element_key(m) for m in group.elements}
        for a in group.elements:
            for b in group.elements:
                assert element_key(a @ b) in keys

    @pytest.mark.parametrize("group", ALL_GROUPS,
                             ids=lambda g: str(g.spec))
    def test_inverses_present(self, group):
        keys = {element_key(m) for m in group.elements}
        for a in group.elements:
            assert element_key(a.T) in keys

    @pytest.mark.parametrize("group", ALL_GROUPS,
                             ids=lambda g: str(g.spec))
    def test_identity_present(self, group):
        assert group.contains_element(np.eye(3))


class TestAxisStructure:
    def test_cyclic_single_axis(self):
        group = cyclic_group(5)
        assert group.axis_folds() == {5: 1}
        assert np.allclose(np.abs(group.axes[0].direction), [0, 0, 1])

    def test_dihedral_axes(self):
        group = dihedral_group(5)
        assert group.axis_folds() == {2: 5, 5: 1}

    def test_dihedral_two_axes(self):
        assert dihedral_group(2).axis_folds() == {2: 3}

    def test_tetrahedral_axes(self):
        assert tetrahedral_group().axis_folds() == {2: 3, 3: 4}

    def test_octahedral_axes(self):
        assert octahedral_group().axis_folds() == {2: 6, 3: 4, 4: 3}

    def test_icosahedral_axes(self):
        assert icosahedral_group().axis_folds() == {2: 15, 3: 10, 5: 6}

    def test_t_is_concrete_subgroup_of_o(self):
        assert tetrahedral_group().is_concrete_subgroup_of(
            octahedral_group())

    def test_o_not_concrete_subgroup_of_i(self):
        assert not octahedral_group().is_concrete_subgroup_of(
            icosahedral_group())


class TestOrientationFlags:
    def test_cyclic_axis_oriented(self):
        assert cyclic_group(4).axes[0].oriented

    def test_dihedral_principal_not_oriented(self):
        group = dihedral_group(4)
        assert not group.principal_axis.oriented

    def test_dihedral_odd_secondaries_oriented(self):
        group = dihedral_group(5)
        for axis in group.axes_of_fold(2):
            assert axis.oriented

    def test_dihedral_even_secondaries_not_oriented(self):
        group = dihedral_group(4)
        for axis in group.axes_of_fold(2):
            assert not axis.oriented

    def test_t_threefold_oriented_twofold_not(self):
        group = tetrahedral_group()
        assert all(a.oriented for a in group.axes_of_fold(3))
        assert not any(a.oriented for a in group.axes_of_fold(2))

    def test_o_and_i_not_oriented(self):
        for group in (octahedral_group(), icosahedral_group()):
            assert not any(a.oriented for a in group.axes)


class TestSpecAndConstruction:
    def test_identity_group(self):
        group = identity_group()
        assert group.is_trivial
        assert group.spec == GroupSpec(GroupKind.CYCLIC, 1)

    @pytest.mark.parametrize("text", ["C1", "C4", "D2", "D7", "T", "O", "I"])
    def test_group_from_spec_round_trip(self, text):
        spec = GroupSpec.parse(text)
        assert group_from_spec(spec).spec == spec

    def test_invalid_cyclic(self):
        with pytest.raises(GroupError):
            cyclic_group(0)

    def test_invalid_dihedral(self):
        with pytest.raises(GroupError):
            dihedral_group(1)

    def test_dihedral_requires_perpendicular_secondary(self):
        with pytest.raises(GroupError):
            dihedral_group(3, principal=(0, 0, 1), secondary=(0, 0.1, 1))

    def test_custom_axis(self):
        group = cyclic_group(3, axis=(1, 1, 1))
        direction = group.axes[0].direction
        assert np.allclose(np.abs(direction),
                           np.ones(3) / np.sqrt(3), atol=1e-9)


class TestGroupActions:
    def test_orbit_size_free_point(self):
        group = octahedral_group()
        orbit = group.orbit([0.3, 0.5, 0.7])
        assert len(orbit) == 24

    def test_orbit_size_on_axis(self):
        group = octahedral_group()
        assert len(group.orbit([0, 0, 1])) == 6
        assert len(group.orbit([1, 1, 1])) == 8

    def test_orbit_of_center(self):
        assert len(tetrahedral_group().orbit([0, 0, 0])) == 1

    def test_stabilizer_sizes(self):
        group = icosahedral_group()
        assert group.stabilizer_size([0, 0, 0]) == 60
        assert group.stabilizer_size([0.31, 0.47, 0.83]) in (1,)

    def test_transformed_group(self, rng):
        from repro.geometry.rotations import random_rotation

        group = tetrahedral_group()
        rot = random_rotation(rng)
        moved = group.transformed(rot)
        assert moved.spec == group.spec
        assert moved.order == group.order
        # Axes must be rotated copies.
        for axis in moved.axes:
            back = rot.T @ axis.direction
            assert group.axis_for_line(back) is not None
