"""Tests for transitive-set generation (Table 2)."""

import numpy as np
import pytest

from repro.core.configuration import Configuration
from repro.errors import GroupError
from repro.groups.catalog import (
    cyclic_group,
    dihedral_group,
    icosahedral_group,
    octahedral_group,
    tetrahedral_group,
)
from repro.patterns.library import named_pattern
from repro.patterns.orbits import (
    generic_seed,
    seed_point_for_folding,
    transitive_set,
)


class TestSeedPoints:
    def test_center_for_full_folding(self):
        group = octahedral_group()
        seed = seed_point_for_folding(group, group.order)
        assert np.allclose(seed, [0, 0, 0])

    def test_axis_seed_has_right_folding(self):
        group = icosahedral_group()
        for mu in (2, 3, 5):
            seed = seed_point_for_folding(group, mu)
            assert group.stabilizer_size(seed) == mu

    def test_generic_seed_is_free(self):
        for group in (tetrahedral_group(), octahedral_group(),
                      icosahedral_group(), dihedral_group(6),
                      cyclic_group(5)):
            assert group.stabilizer_size(generic_seed(group)) == 1

    def test_missing_fold_raises(self):
        with pytest.raises(GroupError):
            seed_point_for_folding(tetrahedral_group(), 5)


class TestTable2Cardinalities:
    @pytest.mark.parametrize("group_name,mu,expected", [
        ("T", 3, 4), ("T", 2, 6), ("T", 1, 12),
        ("O", 4, 6), ("O", 3, 8), ("O", 2, 12), ("O", 1, 24),
        ("I", 5, 12), ("I", 3, 20), ("I", 2, 30), ("I", 1, 60),
    ])
    def test_cardinality_is_order_over_folding(self, group_name, mu,
                                               expected):
        group = {"T": tetrahedral_group, "O": octahedral_group,
                 "I": icosahedral_group}[group_name]()
        orbit = transitive_set(group, mu=mu)
        assert len(orbit) == expected == group.order // mu


class TestTable2Shapes:
    @pytest.mark.parametrize("group_name,mu,shape", [
        ("T", 3, "tetrahedron"),
        ("T", 2, "octahedron"),
        ("O", 4, "octahedron"),
        ("O", 3, "cube"),
        ("O", 2, "cuboctahedron"),
        ("I", 5, "icosahedron"),
        ("I", 3, "dodecahedron"),
        ("I", 2, "icosidodecahedron"),
    ])
    def test_orbit_shapes(self, group_name, mu, shape):
        group = {"T": tetrahedral_group, "O": octahedral_group,
                 "I": icosahedral_group}[group_name]()
        orbit = transitive_set(group, mu=mu)
        assert Configuration(orbit).is_similar_to(named_pattern(shape))

    def test_cyclic_free_orbit_is_polygon(self):
        from repro.geometry.polygons import regular_polygon_fold

        orbit = transitive_set(cyclic_group(7), mu=1)
        assert regular_polygon_fold(orbit) == 7

    def test_dihedral_principal_orbit_is_pair(self):
        orbit = transitive_set(dihedral_group(5), mu=5)
        assert len(orbit) == 2


class TestArguments:
    def test_custom_seed(self):
        group = octahedral_group()
        orbit = transitive_set(group, seed=[0.2, 0.5, 0.9])
        assert len(orbit) == 24

    def test_exactly_one_of_mu_or_seed(self):
        group = tetrahedral_group()
        with pytest.raises(GroupError):
            transitive_set(group)
        with pytest.raises(GroupError):
            transitive_set(group, mu=1, seed=[1, 0, 0])
