"""Tests for the polyhedron generators."""

import numpy as np
import pytest

from repro.core.configuration import Configuration
from repro.errors import GeometryError
from repro.patterns import polyhedra


ALL_GENERATORS = [
    ("tetrahedron", polyhedra.regular_tetrahedron, 4, "T"),
    ("cube", polyhedra.cube, 8, "O"),
    ("octahedron", polyhedra.regular_octahedron, 6, "O"),
    ("dodecahedron", polyhedra.regular_dodecahedron, 20, "I"),
    ("icosahedron", polyhedra.regular_icosahedron, 12, "I"),
    ("cuboctahedron", polyhedra.cuboctahedron, 12, "O"),
    ("icosidodecahedron", polyhedra.icosidodecahedron, 30, "I"),
]


class TestPlatonicAndQuasiRegular:
    @pytest.mark.parametrize("name,gen,count,group", ALL_GENERATORS,
                             ids=[g[0] for g in ALL_GENERATORS])
    def test_vertex_count(self, name, gen, count, group):
        assert len(gen()) == count

    @pytest.mark.parametrize("name,gen,count,group", ALL_GENERATORS,
                             ids=[g[0] for g in ALL_GENERATORS])
    def test_circumradius(self, name, gen, count, group):
        for p in gen(radius=2.5):
            assert np.linalg.norm(p) == pytest.approx(2.5)

    @pytest.mark.parametrize("name,gen,count,group", ALL_GENERATORS,
                             ids=[g[0] for g in ALL_GENERATORS])
    def test_rotation_group(self, name, gen, count, group):
        config = Configuration(gen())
        assert str(config.rotation_group.spec) == group

    @pytest.mark.parametrize("name,gen,count,group", ALL_GENERATORS,
                             ids=[g[0] for g in ALL_GENERATORS])
    def test_centered(self, name, gen, count, group):
        config = Configuration(gen())
        assert np.allclose(config.center, [0, 0, 0], atol=1e-9)

    def test_uniform_edge_lengths(self):
        from repro.geometry.convex import ConvexPolyhedron

        for gen in (polyhedra.regular_tetrahedron, polyhedra.cube,
                    polyhedra.regular_octahedron,
                    polyhedra.regular_icosahedron,
                    polyhedra.regular_dodecahedron):
            lengths = ConvexPolyhedron(gen()).edge_lengths()
            assert max(lengths) - min(lengths) < 1e-9

    def test_invalid_radius(self):
        with pytest.raises(GeometryError):
            polyhedra.cube(radius=0.0)


class TestPrismsAntiprismsPyramids:
    @pytest.mark.parametrize("l", [3, 4, 5, 8])
    def test_prism_group(self, l):
        config = Configuration(polyhedra.prism(l))
        assert str(config.rotation_group.spec) == f"D{l}"
        assert config.n == 2 * l

    @pytest.mark.parametrize("l", [3, 4, 5, 8])
    def test_antiprism_group(self, l):
        config = Configuration(polyhedra.antiprism(l))
        assert str(config.rotation_group.spec) == f"D{l}"

    @pytest.mark.parametrize("k", [3, 4, 5, 7])
    def test_pyramid_group(self, k):
        config = Configuration(polyhedra.pyramid(k))
        assert str(config.rotation_group.spec) == f"C{k}"
        assert config.n == k + 1

    def test_polygon_pattern(self):
        config = Configuration(polyhedra.regular_polygon_pattern(9))
        assert str(config.rotation_group.spec) == "D9"

    def test_prism_requires_three(self):
        with pytest.raises(GeometryError):
            polyhedra.prism(2)

    def test_pyramid_requires_three(self):
        with pytest.raises(GeometryError):
            polyhedra.pyramid(2)

    def test_antiprism_twist(self):
        # The antiprism's top base is rotated by pi/l.
        pts = polyhedra.antiprism(4)
        top = [p for p in pts if p[2] > 0]
        bottom = [p for p in pts if p[2] < 0]
        assert len(top) == len(bottom) == 4
