"""Tests for the named pattern library and shell composition."""

import numpy as np
import pytest

from repro.core.configuration import Configuration
from repro.errors import GeometryError
from repro.patterns.library import compose_shells, named_pattern, pattern_names


class TestNamedPatterns:
    def test_all_names_resolve(self):
        for name in pattern_names():
            pts = named_pattern(name)
            assert len(pts) >= 3

    def test_unknown_name(self):
        with pytest.raises(GeometryError):
            named_pattern("klein_bottle")

    def test_radius_parameter(self):
        pts = named_pattern("cube", radius=3.0)
        assert max(float(np.linalg.norm(p)) for p in pts) == pytest.approx(
            3.0)

    def test_figure1_patterns_present(self):
        # The paper's Figure 1 trio.
        assert len(named_pattern("cube")) == 8
        assert len(named_pattern("octagon")) == 8
        assert len(named_pattern("square_antiprism")) == 8


class TestComposeShells:
    def test_default_radii_are_increasing(self):
        pts = compose_shells(named_pattern("octahedron"),
                             named_pattern("cube"))
        radii = sorted({round(float(np.linalg.norm(p)), 6) for p in pts})
        assert radii == [1.0, 1.5]

    def test_custom_radii(self):
        pts = compose_shells(named_pattern("cube"),
                             named_pattern("cube"),
                             radii=[2.0, 5.0])
        radii = sorted({round(float(np.linalg.norm(p)), 6) for p in pts})
        assert radii == [2.0, 5.0]

    def test_counts_add_up(self):
        pts = compose_shells(named_pattern("tetrahedron"),
                             named_pattern("octahedron"),
                             named_pattern("cube"))
        assert len(pts) == 4 + 6 + 8

    def test_no_multiplicity(self):
        pts = compose_shells(named_pattern("cube"), named_pattern("cube"))
        assert not Configuration(pts).has_multiplicity

    def test_radii_mismatch(self):
        with pytest.raises(GeometryError):
            compose_shells(named_pattern("cube"), radii=[1.0, 2.0])

    def test_common_group_of_composition(self):
        pts = compose_shells(named_pattern("octahedron"),
                             named_pattern("cube"))
        assert str(Configuration(pts).rotation_group.spec) == "O"
