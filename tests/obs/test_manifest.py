"""Manifest building blocks and the audited clock."""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.obs import clock as clock_mod
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    cache_config,
    deterministic_view,
    package_info,
    rows_digest,
    write_manifest,
)


class TestClock:
    def test_injectable_and_restorable(self):
        clock_mod.set_clock(lambda: 42.0)
        assert clock_mod.monotonic() == 42.0
        clock_mod.reset_clock()
        assert clock_mod.monotonic() != 42.0

    def test_system_clock_is_monotonic(self):
        a = clock_mod.monotonic()
        b = clock_mod.monotonic()
        assert b >= a


class TestRowsDigest:
    def test_stable_under_key_order(self):
        assert rows_digest([{"a": 1, "b": 2}]) == \
            rows_digest([{"b": 2, "a": 1}])

    def test_sensitive_to_values(self):
        assert rows_digest([{"a": 1}]) != rows_digest([{"a": 2}])


class TestBuildManifest:
    def _manifest(self, **overrides):
        kwargs = dict(
            experiment="figure1",
            spec={"trials": 2, "seed": 1, "jobs": 1, "cache": None},
            rows=[{"target": "octagon", "formed": 2}],
            metrics={"counters": {"scheduler.rounds": 4},
                     "histograms": {}},
            phase_totals={"round": {"count": 4, "total_s": 0.01}},
            seed_streams=2,
        )
        kwargs.update(overrides)
        return build_manifest(**kwargs)

    def test_schema_and_sections(self):
        manifest = self._manifest()
        assert manifest["schema"] == MANIFEST_SCHEMA_VERSION
        assert manifest["kind"] == "run-manifest"
        assert manifest["package"] == package_info()
        assert manifest["seeds"] == {
            "root": 1,
            "strategy": "numpy.random.SeedSequence(root).spawn "
                        "per trial",
            "streams": 2}
        assert manifest["rows"]["count"] == 1
        assert manifest["cache"] == cache_config()

    def test_dataclass_rows_are_digestable(self):
        @dataclass
        class Row:
            name: str
            value: int

        manifest = self._manifest(rows=[Row("a", 1), Row("b", 2)])
        assert manifest["rows"]["count"] == 2
        assert manifest["rows"]["sha256"] == rows_digest(
            [{"name": "a", "value": 1}, {"name": "b", "value": 2}])

    def test_artifacts_stringified_and_none_dropped(self, tmp_path):
        manifest = self._manifest(
            artifacts={"trace": tmp_path / "t.jsonl", "metrics": None})
        assert manifest["artifacts"] == {
            "trace": str(tmp_path / "t.jsonl")}

    def test_deterministic_view_is_timing_free(self):
        view = deterministic_view(self._manifest(
            artifacts={"trace": "x"}))
        assert "timing" not in view
        assert "artifacts" not in view
        assert view["rows"]["count"] == 1

    def test_write_manifest_sorted_json(self, tmp_path):
        path = tmp_path / "manifest.json"
        manifest = self._manifest()
        write_manifest(path, manifest)
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(
            json.dumps(manifest, sort_keys=True, default=str))


class TestCacheConfig:
    def test_reports_hierarchy_configuration(self):
        config = cache_config()
        assert isinstance(config["enabled"], bool)
        assert config["l1_max_classes"] >= 1
        assert config["l2_capacity_bytes"] >= 1
        assert "enabled" in config["l3"]
