"""Tracer behavior: no-op cost, aggregation, JSONL schema."""

from __future__ import annotations

import json

import numpy as np

from repro.obs import clock as clock_mod
from repro.obs.trace import (
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    AggregatingTracer,
    JsonlTracer,
    NullTracer,
    activated,
    get_tracer,
    render_phase_totals,
    set_tracer,
)


class TestNullTracer:
    def test_singleton_shared_span(self):
        # The disabled path allocates nothing: every span() call
        # returns the same shared no-op context manager.
        a = NULL_TRACER.span("round", n=8)
        b = NULL_TRACER.span("look")
        assert a is b

    def test_disabled_flag_and_empty_totals(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.phase_totals() == {}
        NULL_TRACER.close()  # must be harmless

    def test_null_span_does_not_read_clock(self):
        reads = []

        def spying_clock() -> float:
            reads.append(1)
            return 0.0

        clock_mod.set_clock(spying_clock)
        with NULL_TRACER.span("round"):
            pass
        assert reads == []

    def test_overhead_guard(self):
        # Instrumented-but-disabled code must stay cheap: one null
        # span per loop iteration, amortized under a generous absolute
        # bound (the real cost is ~100ns; 5us catches accidental
        # allocation or clock reads without flaking on slow CI).
        import timeit

        tracer = NullTracer()

        def with_span():
            with tracer.span("round"):
                pass

        repeats = [timeit.timeit(with_span, number=10_000) / 10_000
                   for _ in range(5)]
        assert min(repeats) < 5e-6

    def test_default_tracer_is_null(self):
        assert get_tracer() is NULL_TRACER


class TestAggregatingTracer:
    def test_totals_count_and_sum(self, fake_clock):
        tracer = AggregatingTracer()
        with tracer.span("round"):
            with tracer.span("look"):
                pass
            with tracer.span("look"):
                pass
        totals = tracer.phase_totals()
        assert totals["look"]["count"] == 2
        assert totals["round"]["count"] == 1
        # Fake clock ticks 1s per read; each leaf span spans one tick.
        assert totals["look"]["total_s"] == 2.0
        assert totals["round"]["total_s"] == 5.0

    def test_totals_sorted_by_name(self, fake_clock):
        tracer = AggregatingTracer()
        for name in ("move", "compute", "look"):
            with tracer.span(name):
                pass
        assert list(tracer.phase_totals()) == ["compute", "look", "move"]

    def test_activated_restores_previous(self):
        tracer = AggregatingTracer()
        with activated(tracer):
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_activated_restores_on_error(self):
        tracer = AggregatingTracer()
        try:
            with activated(tracer):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert get_tracer() is NULL_TRACER


class TestRenderPhaseTotals:
    def test_renders_tracer_totals(self, fake_clock):
        tracer = AggregatingTracer()
        with tracer.span("round"):
            with tracer.span("look"):
                pass
            with tracer.span("look"):
                pass
        text = render_phase_totals(tracer.phase_totals())
        lines = text.splitlines()
        assert lines[0] == "trace phases:"
        # Fake clock ticks 1s per read: each look span is one tick.
        assert "  look: count=2 mean_ms=1000.000 total_ms=2000.000" in lines
        assert any(line.startswith("  round: count=1") for line in lines)

    def test_empty_totals(self):
        assert render_phase_totals({}) == \
            "trace phases:\n  (no spans recorded)"

    def test_accepts_manifest_phase_schema(self):
        # The manifest embeds phase_totals() verbatim under
        # timing.phases; the renderer must take that dict as-is.
        totals = {"compute": {"count": 4, "total_s": 0.002}}
        text = render_phase_totals(totals, header="phases:")
        assert text == \
            "phases:\n  compute: count=4 mean_ms=0.500 total_ms=2.000"


class TestJsonlTracer:
    def test_header_pins_schema(self, tmp_path, fake_clock):
        path = tmp_path / "trace.jsonl"
        tracer = JsonlTracer(path)
        tracer.close()
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert records[0] == {"kind": "trace-header",
                              "schema": TRACE_SCHEMA_VERSION}

    def test_span_records_shape(self, tmp_path, fake_clock):
        path = tmp_path / "trace.jsonl"
        tracer = JsonlTracer(path)
        with tracer.span("round", n=4):
            with tracer.span("look", n=4):
                pass
        tracer.close()
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        spans = [r for r in records if r["kind"] == "span"]
        # Inner span closes first; depth reflects nesting.
        assert [(s["name"], s["depth"]) for s in spans] == \
            [("look", 1), ("round", 0)]
        for span in spans:
            assert set(span) == {"kind", "name", "depth", "t0_s",
                                 "dur_s", "attrs"}
            assert span["t0_s"] >= 0.0
            assert span["dur_s"] >= 0.0

    def test_timestamps_relative_not_epoch(self, tmp_path):
        # With the real clock, t0 is relative to tracer creation:
        # far smaller than any epoch timestamp would be.
        path = tmp_path / "trace.jsonl"
        tracer = JsonlTracer(path)
        with tracer.span("round"):
            pass
        tracer.close()
        spans = [json.loads(line)
                 for line in path.read_text().splitlines()][1:]
        assert all(s["t0_s"] < 1e6 for s in spans)


class TestSchedulerSpans:
    def test_run_emits_round_and_phase_spans(self, tmp_path, cube):
        from repro import form_pattern
        from repro.patterns.library import named_pattern

        path = tmp_path / "trace.jsonl"
        tracer = JsonlTracer(path)
        with activated(tracer):
            result = form_pattern(cube, named_pattern("octagon"), seed=1)
        tracer.close()
        assert result.reached
        names = [json.loads(line)["name"]
                 for line in path.read_text().splitlines()[1:]]
        for expected in ("run", "round", "look", "compute", "move"):
            assert expected in names
        counts = tracer.phase_totals()
        assert counts["round"]["count"] == result.rounds
        assert counts["look"]["count"] == counts["compute"]["count"] \
            == counts["move"]["count"] == result.rounds

    def test_rows_identical_with_and_without_tracing(self, cube):
        # Cold caches before both runs: cache state is the one
        # legitimate source of last-ulp float noise, and it must not
        # be confused with tracer interference.
        from repro import form_pattern, perf
        from repro.patterns.library import named_pattern

        octagon = named_pattern("octagon")
        perf.clear_caches()
        plain = form_pattern(cube, octagon, seed=3)
        perf.clear_caches()
        with activated(AggregatingTracer()):
            traced = form_pattern(cube, octagon, seed=3)
        assert plain.reached == traced.reached
        assert plain.rounds == traced.rounds
        for a, b in zip(plain.final.points, traced.final.points):
            assert np.array_equal(a, b)


class TestSetTracer:
    def test_set_and_restore(self):
        tracer = AggregatingTracer()
        set_tracer(tracer)
        assert get_tracer() is tracer
        set_tracer(NULL_TRACER)
        assert get_tracer() is NULL_TRACER
