"""Fixtures for the observability tests: clean registry and clock."""

from __future__ import annotations

import itertools

import pytest

from repro.obs import clock as clock_mod
from repro.obs import metrics as metrics_mod
from repro.obs import trace as trace_mod


@pytest.fixture(autouse=True)
def fresh_observability():
    """Isolate each test: empty registry, null tracer, system clock."""
    metrics_mod.registry().reset()
    trace_mod.set_tracer(trace_mod.NULL_TRACER)
    clock_mod.reset_clock()
    yield
    metrics_mod.registry().reset()
    trace_mod.set_tracer(trace_mod.NULL_TRACER)
    clock_mod.reset_clock()


@pytest.fixture
def fake_clock():
    """An injectable clock ticking one second per read."""
    counter = itertools.count()

    def tick() -> float:
        return float(next(counter))

    clock_mod.set_clock(tick)
    yield tick
    clock_mod.reset_clock()
