"""Metrics registry: merge semantics, cache views, renders."""

from __future__ import annotations

from repro.obs import metrics as metrics_mod
from repro.obs.metrics import (
    METRICS_SCHEMA_VERSION,
    MetricsRegistry,
    metrics_artifact,
    render_cache_metrics,
    render_snapshot,
    snapshot_delta,
)


class TestRegistry:
    def test_counters_and_histograms(self):
        reg = MetricsRegistry()
        reg.inc("a", 2)
        reg.inc("a")
        reg.observe("h", 3.0)
        reg.observe("h", 1.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 3}
        assert snap["histograms"]["h"] == {
            "count": 2, "total": 4.0, "min": 1.0, "max": 3.0}

    def test_snapshot_keys_sorted(self):
        reg = MetricsRegistry()
        for name in ("z", "a", "m"):
            reg.inc(name)
        assert list(reg.snapshot()["counters"]) == ["a", "m", "z"]

    def test_merge_is_partition_independent(self):
        # Splitting the same event stream across any number of
        # "workers" and merging their deltas must equal running it
        # inline — the property behind jobs-invariant counters.
        events = [("inc", "c", 2), ("obs", "h", 5.0), ("inc", "c", 1),
                  ("obs", "h", 1.0), ("inc", "d", 7), ("obs", "h", 3.0)]

        def apply(reg, chunk):
            for kind, name, value in chunk:
                if kind == "inc":
                    reg.inc(name, value)
                else:
                    reg.observe(name, value)

        inline = MetricsRegistry()
        apply(inline, events)

        for split in range(1, len(events)):
            merged = MetricsRegistry()
            for chunk in (events[:split], events[split:]):
                worker = MetricsRegistry()
                apply(worker, chunk)
                merged.merge(worker.snapshot())
            assert merged.snapshot() == inline.snapshot(), split

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "histograms": {}}


class TestSnapshotDelta:
    def test_drops_zero_activity(self):
        reg = MetricsRegistry()
        reg.inc("before_only", 4)
        before = reg.snapshot()
        reg.inc("active", 2)
        delta = snapshot_delta(before, reg.snapshot())
        assert delta["counters"] == {"active": 2}

    def test_histogram_delta_counts(self):
        reg = MetricsRegistry()
        reg.observe("h", 1.0)
        before = reg.snapshot()
        reg.observe("h", 9.0)
        delta = snapshot_delta(before, reg.snapshot())
        assert delta["histograms"]["h"]["count"] == 1
        assert delta["histograms"]["h"]["total"] == 9.0


class TestCacheViews:
    def test_cache_metrics_flat_namespace(self, cube):
        from repro.core.configuration import Configuration

        Configuration(cube).symmetry
        flat = metrics_mod.cache_metrics()
        assert all(name.startswith("cache.l") for name in flat)
        assert flat["cache.l1.symmetry.misses"] >= 1
        assert any(name.startswith("cache.l2.") for name in flat)
        assert any(name.startswith("cache.l3.") for name in flat)
        assert list(flat) == sorted(flat)

    def test_l1_snapshot_matches_execution_result(self):
        # The scheduler's per-run cache_stats and the CLI's cache
        # render read the same counters; the per-run delta of the
        # snapshot function must match what the result reports
        # (windowed around scheduler.run, which is what the result
        # covers).
        import numpy as np

        from repro.patterns import polyhedra
        from repro.robots import FsyncScheduler, random_frames
        from repro.robots.algorithms.pattern_formation import (
            make_pattern_formation_algorithm,
        )

        n = 8
        rng = np.random.default_rng(5)
        target = polyhedra.regular_polygon_pattern(n)
        scheduler = FsyncScheduler(
            make_pattern_formation_algorithm(target),
            random_frames(n, rng), target=target)
        before = metrics_mod.l1_snapshot()
        result = scheduler.run(
            [rng.normal(size=3) for _ in range(n)],
            stop_condition=lambda c: c.is_similar_to(target),
            max_rounds=30)
        after = metrics_mod.l1_snapshot()
        assert result.cache_stats == metrics_mod.l1_delta(before, after)

    def test_l1_snapshot_is_nested_ints(self):
        snap = metrics_mod.l1_snapshot()
        assert set(snap) >= {"symmetry", "symmetricity", "subgroups",
                             "round"}
        for counters in snap.values():
            for value in counters.values():
                assert isinstance(value, int)
                assert not isinstance(value, bool)


class TestRenders:
    def test_render_snapshot_stable(self):
        reg = MetricsRegistry()
        reg.inc("b", 2)
        reg.inc("a", 1)
        text = render_snapshot(reg.snapshot())
        assert text.splitlines() == ["metrics:", "  a = 1", "  b = 2"]

    def test_render_cache_metrics_sorted_single_format(self):
        text = render_cache_metrics({"cache.l2.hits": 1,
                                     "cache.l1.hits": 2})
        assert text.splitlines() == [
            "cache hierarchy:",
            "  cache.l1.hits = 2",
            "  cache.l2.hits = 1",
        ]


class TestArtifact:
    def test_metrics_artifact_schema(self):
        reg = MetricsRegistry()
        reg.inc("scheduler.rounds", 3)
        payload = metrics_artifact(reg.snapshot())
        assert payload["schema"] == METRICS_SCHEMA_VERSION
        assert payload["kind"] == "metrics-snapshot"
        assert payload["counters"] == {"scheduler.rounds": 3}
        assert "cache" in payload

    def test_write_metrics_round_trips(self, tmp_path):
        import json

        reg = MetricsRegistry()
        reg.inc("x", 1)
        path = tmp_path / "metrics.json"
        written = metrics_mod.write_metrics(path, reg.snapshot(),
                                            extra={"experiment": "t"})
        assert json.loads(path.read_text()) == \
            json.loads(json.dumps(written))
        assert written["experiment"] == "t"
