"""The CLI's observability flags produce schema-versioned artifacts."""

from __future__ import annotations

import json

from repro import cli


class TestExperimentArtifacts:
    def test_trace_metrics_manifest_flags(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.json"
        manifest = tmp_path / "mf.json"
        assert cli.main([
            "experiment", "figure1", "--trials", "1",
            "--trace", str(trace), "--metrics", str(metrics),
            "--manifest", str(manifest)]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows and all("formed" in row for row in rows)

        header = json.loads(trace.read_text().splitlines()[0])
        assert header == {"kind": "trace-header", "schema": 1}
        names = {json.loads(line)["name"]
                 for line in trace.read_text().splitlines()[1:]}
        assert {"experiment", "run", "round"} <= names

        metrics_payload = json.loads(metrics.read_text())
        assert metrics_payload["schema"] == 1
        assert metrics_payload["counters"]["scheduler.rounds"] >= 1

        manifest_payload = json.loads(manifest.read_text())
        assert manifest_payload["schema"] == 1
        assert manifest_payload["experiment"] == "figure1"
        assert manifest_payload["rows"]["count"] == len(rows)

    def test_new_experiment_names_exposed(self, capsys):
        assert cli.main(["experiment", "baseline_2d"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows

    def test_cache_stats_uses_unified_render(self, capsys):
        assert cli.main(["experiment", "figure1", "--trials", "1",
                         "--cache-stats"]) == 0
        err = capsys.readouterr().err
        assert "cache hierarchy:" in err
        assert "cache.l1." in err


class TestFormArtifacts:
    def test_form_trace_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.json"
        assert cli.main(["form", "cube", "octagon", "--seed", "1",
                         "--trace", str(trace),
                         "--metrics", str(metrics)]) == 0
        assert "formed: True" in capsys.readouterr().out
        names = {json.loads(line).get("name")
                 for line in trace.read_text().splitlines()[1:]}
        assert {"run", "round", "look", "compute", "move"} <= names
        payload = json.loads(metrics.read_text())
        assert payload["command"] == "form"
        assert payload["counters"]["scheduler.runs"] >= 1

    def test_form_cache_stats_same_format_as_experiment(self, capsys):
        assert cli.main(["form", "cube", "octagon", "--seed", "1",
                         "--cache-stats"]) == 0
        err = capsys.readouterr().err
        assert "cache hierarchy:" in err


class TestHelp:
    def test_exit_codes_documented(self, capsys):
        import pytest

        with pytest.raises(SystemExit):
            cli.main(["--help"])
        out = capsys.readouterr().out
        assert "exit codes:" in out
