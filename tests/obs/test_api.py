"""The ``repro.api`` façade: dispatch, manifests, jobs-invariance."""

from __future__ import annotations

import json
from dataclasses import FrozenInstanceError

import pytest

from repro import perf
from repro.api import (
    ExperimentSpec,
    RunResult,
    experiment_names,
    run_experiment,
)
from repro.errors import ReproError
from repro.obs.manifest import MANIFEST_SCHEMA_VERSION, deterministic_view


@pytest.fixture(autouse=True)
def fresh_caches():
    perf.clear_caches()
    yield
    perf.set_enabled(True)
    perf.clear_caches()


class TestRegistry:
    def test_names_cover_every_driver(self):
        assert experiment_names() == [
            "baseline_2d", "figure1", "lemma7", "plane_formation",
            "theorem11", "theorem41"]

    def test_unknown_name_raises_repro_error(self):
        with pytest.raises(ReproError, match="unknown experiment"):
            run_experiment("nonesuch")

    def test_spec_is_frozen(self):
        spec = ExperimentSpec()
        with pytest.raises(FrozenInstanceError):
            spec.seed = 3


class TestRunResult:
    def test_rows_match_direct_driver(self):
        from repro.analysis.experiments import _figure1_rows

        result = run_experiment(
            "figure1", ExperimentSpec(trials=2, seed=1))
        assert isinstance(result, RunResult)
        assert result.name == "figure1"
        assert json.dumps(result.rows, default=str) == \
            json.dumps(_figure1_rows(trials=2, seed=1), default=str)

    def test_metrics_cover_the_run(self):
        result = run_experiment(
            "figure1", ExperimentSpec(trials=2, seed=1))
        counters = result.metrics["counters"]
        assert counters["experiment.runs"] == 1
        assert counters["scheduler.rounds"] >= 1
        assert counters["seeds.spawned"] >= 2

    def test_cache_override_restores_prior_setting(self):
        perf.set_enabled(True)
        run_experiment("figure1",
                       ExperimentSpec(trials=1, cache=False))
        assert perf.is_enabled() is True


class TestManifest:
    def test_manifest_sections(self):
        result = run_experiment(
            "figure1", ExperimentSpec(trials=2, seed=1))
        manifest = result.manifest
        assert manifest["schema"] == MANIFEST_SCHEMA_VERSION
        assert manifest["kind"] == "run-manifest"
        assert manifest["experiment"] == "figure1"
        assert manifest["package"]["name"] == "repro"
        assert manifest["seeds"]["root"] == 1
        assert manifest["seeds"]["streams"] == \
            result.metrics["counters"]["seeds.spawned"]
        assert manifest["rows"]["count"] == len(result.rows)
        assert "timing" in manifest
        assert manifest["spec"]["trials"] == 2

    def test_manifest_resolves_default_trials(self):
        result = run_experiment("figure1", ExperimentSpec(seed=1))
        # trials=None in the spec resolves to the driver's default so
        # the manifest states what actually ran.
        assert result.manifest["spec"]["trials"] == 5

    def test_deterministic_view_repeatable(self):
        spec = ExperimentSpec(trials=2, seed=1)
        first = run_experiment("figure1", spec)
        perf.clear_caches()
        second = run_experiment("figure1", spec)
        assert json.dumps(deterministic_view(first.manifest),
                          sort_keys=True, default=str) == \
            json.dumps(deterministic_view(second.manifest),
                       sort_keys=True, default=str)

    def test_deterministic_view_strips_timing_and_artifacts(self):
        result = run_experiment("figure1", ExperimentSpec(trials=1))
        view = deterministic_view(result.manifest)
        assert "timing" not in view
        assert "artifacts" not in view


class TestJobsInvariance:
    def test_rows_and_logical_counters_jobs_invariant(self):
        from repro.obs import metrics as metrics_mod

        metrics_mod.registry().reset()
        serial = run_experiment(
            "figure1", ExperimentSpec(trials=2, seed=1, jobs=1))
        perf.clear_caches()
        metrics_mod.registry().reset()
        fanned = run_experiment(
            "figure1", ExperimentSpec(trials=2, seed=1, jobs=4))
        assert json.dumps(serial.rows, default=str) == \
            json.dumps(fanned.rows, default=str)
        assert serial.manifest["rows"]["sha256"] == \
            fanned.manifest["rows"]["sha256"]
        # The logical counters (model events, not cache luck) must be
        # byte-identical: worker deltas merge to the inline totals.
        assert json.dumps(serial.metrics["counters"], sort_keys=True) \
            == json.dumps(fanned.metrics["counters"], sort_keys=True)


class TestArtifacts:
    def test_all_three_artifacts_written(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.json"
        manifest = tmp_path / "mf.json"
        result = run_experiment("figure1", ExperimentSpec(
            trials=1, trace_path=trace, metrics_path=metrics,
            manifest_path=manifest))
        header = json.loads(trace.read_text().splitlines()[0])
        assert header["kind"] == "trace-header"
        metrics_payload = json.loads(metrics.read_text())
        assert metrics_payload["kind"] == "metrics-snapshot"
        assert metrics_payload["experiment"] == "figure1"
        manifest_payload = json.loads(manifest.read_text())
        assert manifest_payload == json.loads(
            json.dumps(result.manifest, sort_keys=True, default=str))
        assert set(manifest_payload["artifacts"]) == \
            {"trace", "metrics", "manifest"}

    def test_timing_phases_populated(self, tmp_path):
        result = run_experiment("figure1", ExperimentSpec(
            trials=1, trace_path=tmp_path / "t.jsonl"))
        phases = result.manifest["timing"]["phases"]
        assert "experiment" in phases
        for name in ("round", "look", "compute", "move"):
            assert phases[name]["count"] >= 1


class TestDeprecatedShims:
    def test_shims_warn_and_delegate(self):
        from repro.analysis.experiments import figure1_experiment

        with pytest.warns(DeprecationWarning,
                          match="run_experiment"):
            rows = figure1_experiment(trials=1, seed=2)
        direct = run_experiment(
            "figure1", ExperimentSpec(trials=1, seed=2)).rows
        assert json.dumps(rows, default=str) == \
            json.dumps(direct, default=str)

    @pytest.mark.parametrize("name,kwargs", [
        ("lemma7_experiment", {"trials": 1}),
        ("theorem41_experiment", {"trials": 1}),
        ("theorem11_experiment", {}),
        ("figure1_experiment", {"trials": 1}),
        ("plane_formation_experiment", {}),
        ("baseline_2d_experiment", {}),
    ])
    def test_every_old_entrypoint_warns(self, name, kwargs):
        from repro.analysis import experiments

        with pytest.warns(DeprecationWarning, match=name):
            getattr(experiments, name)(**kwargs)
