"""Tests for the 2D Suzuki–Yamashita baseline."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.twod import (
    Frame2D,
    FsyncScheduler2D,
    center_2d,
    is_formable_2d,
    make_formation_algorithm_2d,
    random_frames_2d,
    symmetricity_2d,
)
from repro.twod.formation import are_similar_2d
from repro.twod.symmetricity import rotation_group_order_2d


def polygon(k, r=1.0, phase=0.0, c=(0.0, 0.0)):
    return [np.array([c[0] + r * np.cos(phase + 2 * np.pi * i / k),
                      c[1] + r * np.sin(phase + 2 * np.pi * i / k)])
            for i in range(k)]


def generic(n, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=2) for _ in range(n)]


class TestSymmetricity2D:
    @pytest.mark.parametrize("k", [3, 4, 5, 8])
    def test_polygon(self, k):
        assert symmetricity_2d(polygon(k)) == k

    def test_two_concentric_polygons(self):
        assert symmetricity_2d(polygon(4) + polygon(4, 0.6, 0.3)) == 4

    def test_gcd_behaviour(self):
        assert symmetricity_2d(polygon(6) + polygon(3, 0.5, 0.2)) == 3

    def test_generic_is_one(self):
        assert symmetricity_2d(generic(7, seed=5)) == 1

    def test_center_exception(self):
        assert symmetricity_2d(polygon(4) + [np.zeros(2)]) == 1

    def test_point_multiset(self):
        assert symmetricity_2d([np.zeros(2)] * 6) == 6

    def test_rotation_group_order_ignores_exception(self):
        pts = polygon(4) + [np.zeros(2)]
        assert rotation_group_order_2d(pts) == 4

    def test_3d_points_accepted(self):
        pts3 = [np.array([p[0], p[1], 0.0]) for p in polygon(5)]
        assert symmetricity_2d(pts3) == 5

    def test_center(self):
        c = center_2d(polygon(4, c=(3.0, -2.0)))
        assert np.allclose(c, [3.0, -2.0], atol=1e-9)


class TestFormability2D:
    def test_divisibility(self):
        assert is_formable_2d(polygon(4) + polygon(4, 0.5, 0.2),
                              polygon(8))
        assert not is_formable_2d(polygon(8),
                                  polygon(4) + polygon(4, 0.5, 0.2))

    def test_generic_to_anything(self):
        assert is_formable_2d(generic(6), polygon(6))

    def test_size_mismatch(self):
        assert not is_formable_2d(polygon(4), polygon(5))

    def test_gather_always_formable(self):
        assert is_formable_2d(polygon(8), [np.zeros(2)] * 8)


class TestSimilarity2D:
    def test_rotation_scale_translation(self):
        pts = generic(6, seed=3)
        angle = 0.7
        rot = np.array([[np.cos(angle), -np.sin(angle)],
                        [np.sin(angle), np.cos(angle)]])
        moved = [3.0 * (rot @ p) + np.array([1.0, -2.0]) for p in pts]
        assert are_similar_2d(pts, moved)

    def test_mirror_not_similar(self):
        pts = generic(6, seed=3)
        mirrored = [np.array([p[0], -p[1]]) for p in pts]
        assert not are_similar_2d(pts, mirrored)

    def test_different_patterns(self):
        assert not are_similar_2d(polygon(6), generic(6, seed=1))


class TestFrames2D:
    def test_round_trip(self, rng):
        frame = Frame2D(angle=1.1, scale=2.5)
        p = rng.normal(size=2)
        pos = rng.normal(size=2)
        assert np.allclose(frame.to_world(frame.observe(p, pos), pos), p)

    def test_negative_scale_rejected(self):
        with pytest.raises(SimulationError):
            Frame2D(scale=-1.0)


class TestFormation2D:
    CASES = [
        ("two squares -> octagon",
         lambda: polygon(4) + polygon(4, 0.6, 0.3), lambda: polygon(8)),
        ("generic -> octagon", lambda: generic(8, 4), lambda: polygon(8)),
        ("generic -> generic", lambda: generic(6, 1),
         lambda: generic(6, 2)),
        ("two triangles -> hexagon",
         lambda: polygon(3) + polygon(3, 0.5, 0.2), lambda: polygon(6)),
        ("square+center -> pentagon",
         lambda: polygon(4) + [np.zeros(2)], lambda: polygon(5)),
        ("gather", lambda: generic(8, 4), lambda: [np.zeros(2)] * 8),
    ]

    @pytest.mark.parametrize("name,initial_factory,target_factory", CASES,
                             ids=[c[0] for c in CASES])
    def test_formation(self, name, initial_factory, target_factory):
        initial = initial_factory()
        target = target_factory()
        frames = random_frames_2d(len(initial), np.random.default_rng(3))
        algorithm = make_formation_algorithm_2d(target)
        scheduler = FsyncScheduler2D(algorithm, frames, target=target)
        result = scheduler.run(
            initial,
            stop_condition=lambda pts: are_similar_2d(pts, target),
            max_rounds=30)
        assert result.reached

    def test_multiple_seeds(self):
        initial = polygon(4) + polygon(4, 0.6, 0.3)
        target = polygon(8)
        for seed in range(4):
            frames = random_frames_2d(8, np.random.default_rng(seed))
            algorithm = make_formation_algorithm_2d(target)
            scheduler = FsyncScheduler2D(algorithm, frames, target=target)
            result = scheduler.run(
                initial,
                stop_condition=lambda pts: are_similar_2d(pts, target),
                max_rounds=30)
            assert result.reached

    def test_already_formed_stays(self):
        target = polygon(8)
        frames = random_frames_2d(8, np.random.default_rng(0))
        algorithm = make_formation_algorithm_2d(target)
        scheduler = FsyncScheduler2D(algorithm, frames, target=target)
        result = scheduler.run(
            polygon(8, r=2.0, phase=0.3),
            stop_condition=lambda pts: are_similar_2d(pts, target),
            max_rounds=5)
        assert result.reached
        assert result.rounds == 0
