"""Tests for local frames and observations."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.geometry.rotations import rotation_about_axis
from repro.robots.model import OBLIVIOUS_STAY, LocalFrame, Observation


class TestLocalFrame:
    def test_identity_frame(self):
        frame = LocalFrame()
        assert np.allclose(frame.observe([1, 2, 3], [0, 0, 0]), [1, 2, 3])

    def test_observe_is_relative_to_position(self):
        frame = LocalFrame()
        assert np.allclose(frame.observe([3, 0, 0], [1, 0, 0]), [2, 0, 0])

    def test_scale_divides_observation(self):
        frame = LocalFrame(scale=2.0)
        assert np.allclose(frame.observe([4, 0, 0], [0, 0, 0]), [2, 0, 0])

    def test_rotation_applies_inverse_on_observe(self):
        rot = rotation_about_axis([0, 0, 1], np.pi / 2)
        frame = LocalFrame(rotation=rot)
        # World +y is local +x when the frame's x-axis points at +y.
        assert np.allclose(frame.observe([0, 1, 0], [0, 0, 0]), [1, 0, 0],
                           atol=1e-12)

    def test_round_trip(self, rng):
        frame = LocalFrame.random(rng)
        position = rng.normal(size=3)
        world = rng.normal(size=3)
        local = frame.observe(world, position)
        assert np.allclose(frame.to_world(local, position), world,
                           atol=1e-9)

    def test_self_observation_is_origin(self, rng):
        frame = LocalFrame.random(rng)
        p = rng.normal(size=3)
        assert np.allclose(frame.observe(p, p), [0, 0, 0], atol=1e-12)

    def test_negative_scale_rejected(self):
        with pytest.raises(SimulationError):
            LocalFrame(scale=-1.0)

    def test_left_handed_frame_rejected(self):
        with pytest.raises(SimulationError):
            LocalFrame(rotation=np.diag([1.0, 1.0, -1.0]))

    def test_composed_with(self, rng):
        frame = LocalFrame.random(rng)
        rot = rotation_about_axis([1, 0, 0], 0.5)
        composed = frame.composed_with(rot)
        assert np.allclose(composed.rotation, rot @ frame.rotation)
        assert composed.scale == frame.scale

    def test_random_frame_scale_range(self, rng):
        for _ in range(20):
            frame = LocalFrame.random(rng, scale_range=(0.5, 2.0))
            assert 0.5 <= frame.scale <= 2.0


class TestObservation:
    def test_basic(self):
        obs = Observation([[0, 0, 0], [1, 0, 0]], self_index=0)
        assert obs.n == 2
        assert np.allclose(obs.own_position(), [0, 0, 0])

    def test_self_must_be_origin(self):
        with pytest.raises(SimulationError):
            Observation([[1, 0, 0], [0, 0, 0]], self_index=0)

    def test_target_is_stored(self):
        obs = Observation([[0, 0, 0]], self_index=0,
                          target=[[1, 2, 3]])
        assert np.allclose(obs.target[0], [1, 2, 3])

    def test_stay_algorithm(self):
        obs = Observation([[0, 0, 0], [1, 1, 1]], self_index=0)
        assert np.allclose(OBLIVIOUS_STAY(obs), [0, 0, 0])
