"""Tests for ψ_SYM (Algorithm 4.2) and Theorem 4.1."""

import numpy as np
import pytest

from repro.core.configuration import Configuration
from repro.core.symmetricity import symmetricity
from repro.geometry.polygons import regular_polygon_fold
from repro.groups.subgroups import is_abstract_subgroup
from repro.patterns import polyhedra
from repro.patterns.library import compose_shells, named_pattern
from repro.robots.adversary import random_frames, symmetric_frames
from repro.robots.algorithms.sym import is_sym_terminal, psi_sym
from repro.robots.scheduler import FsyncScheduler
from tests.conftest import generic_cloud


def run_sym(points, seed=0, frames=None, max_rounds=20):
    if frames is None:
        frames = random_frames(len(points), np.random.default_rng(seed))
    scheduler = FsyncScheduler(psi_sym, frames)
    return scheduler.run(points, stop_condition=is_sym_terminal,
                         max_rounds=max_rounds)


class TestTerminalPredicate:
    def test_trivial_group_is_terminal(self):
        assert is_sym_terminal(Configuration(generic_cloud(6, seed=2)))

    def test_regular_polygon_is_terminal(self):
        assert is_sym_terminal(Configuration(
            polyhedra.regular_polygon_pattern(7)))

    def test_free_orbit_is_terminal(self):
        assert is_sym_terminal(Configuration(polyhedra.prism(5)))

    def test_cube_is_not_terminal(self, cube):
        assert not is_sym_terminal(Configuration(cube))

    def test_pyramid_is_not_terminal(self):
        assert not is_sym_terminal(Configuration(polyhedra.pyramid(4)))

    def test_center_robot_is_not_terminal(self):
        pts = polyhedra.prism(4) + [np.zeros(3)]
        assert not is_sym_terminal(Configuration(pts))

    def test_collinear_not_terminal(self):
        pts = [np.array([0, 0, z], dtype=float) for z in (-2, -1, 1, 2)]
        assert not is_sym_terminal(Configuration(pts))


class TestTheorem41:
    CASES = [
        ("cube", lambda: named_pattern("cube")),
        ("octahedron", lambda: named_pattern("octahedron")),
        ("icosahedron", lambda: named_pattern("icosahedron")),
        ("cuboctahedron", lambda: named_pattern("cuboctahedron")),
        ("pyramid4", lambda: polyhedra.pyramid(4)),
        ("composite", lambda: compose_shells(
            named_pattern("octahedron"), named_pattern("cube"))),
        ("triple", lambda: compose_shells(
            named_pattern("tetrahedron"), named_pattern("cube"),
            named_pattern("octahedron"))),
    ]

    @pytest.mark.parametrize("name,factory", CASES,
                             ids=[c[0] for c in CASES])
    def test_reaches_terminal_within_seven_rounds(self, name, factory):
        points = factory()
        result = run_sym(points)
        assert result.reached
        assert result.rounds <= 7

    @pytest.mark.parametrize("name,factory", CASES,
                             ids=[c[0] for c in CASES])
    def test_final_group_in_rho(self, name, factory):
        points = factory()
        rho = symmetricity(Configuration(points))
        result = run_sym(points)
        final = result.final
        report = final.symmetry
        assert report.kind == "finite"
        assert (report.group.spec in rho.specs
                or regular_polygon_fold(final.points) is not None)

    @pytest.mark.parametrize("name,factory", CASES,
                             ids=[c[0] for c in CASES])
    def test_no_multiplicity_created(self, name, factory):
        points = factory()
        result = run_sym(points)
        for config in result.configurations:
            assert not config.has_multiplicity

    def test_regular_polygon_fixpoint(self):
        points = polyhedra.regular_polygon_pattern(6)
        result = run_sym(points)
        assert result.rounds == 0
        for a, b in zip(result.final.points, points):
            assert np.allclose(a, b)


class TestWorstCaseFrames:
    @pytest.mark.parametrize("name", ["cube", "tetrahedron",
                                      "icosahedron", "cuboctahedron"])
    def test_sigma_survives_exactly(self, name):
        points = named_pattern(name)
        config = Configuration(points)
        rho = symmetricity(config)
        for spec in rho.maximal:
            witness = rho.witness(spec)
            frames = symmetric_frames(config, witness,
                                      np.random.default_rng(5))
            result = run_sym(points, frames=frames)
            assert result.reached
            final_spec = result.final.symmetry.group.spec
            # Lemma 2 lower bound + Theorem 4.1 upper bound.
            assert is_abstract_subgroup(spec, final_spec)
            assert final_spec in rho.specs


class TestCollinearConfigurations:
    def test_symmetric_line_breaks_to_rho(self):
        points = [np.array([0, 0, z], dtype=float)
                  for z in (-2.0, -1.0, 1.0, 2.0)]
        rho = symmetricity(Configuration(points))
        result = run_sym(points)
        assert result.reached
        report = result.final.symmetry
        assert report.kind == "finite"
        assert report.group.spec in rho.specs

    def test_asymmetric_line(self):
        points = [np.array([0, 0, z], dtype=float)
                  for z in (-2.0, -0.5, 1.0, 2.0)]
        result = run_sym(points)
        assert result.reached
        assert result.final.symmetry.kind == "finite"

    def test_line_with_center_robot(self):
        points = [np.array([0, 0, z], dtype=float)
                  for z in (-1.0, 0.0, 1.0)]
        result = run_sym(points)
        assert result.reached


class TestCenterRobot:
    def test_center_robot_leaves_first(self):
        points = polyhedra.prism(4) + [np.zeros(3)]
        frames = random_frames(len(points), np.random.default_rng(1))
        scheduler = FsyncScheduler(psi_sym, frames)
        after = scheduler.step(points)
        # The prism robots stay; the center robot moved off center.
        for i in range(8):
            assert np.allclose(after[i], points[i], atol=1e-9)
        assert float(np.linalg.norm(after[8])) > 1e-6
