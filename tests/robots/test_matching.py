"""Tests for the matching M(P, F̃) (Section 6.2, Lemmas 13–14)."""

import numpy as np
import pytest

from repro.core.configuration import Configuration
from repro.errors import MatchingError
from repro.patterns import polyhedra
from repro.patterns.library import named_pattern
from repro.robots.adversary import random_frames
from repro.robots.algorithms.embedding import embed_target
from repro.robots.algorithms.matching import match_configuration_to_pattern
from repro.robots.algorithms.sym import is_sym_terminal, psi_sym
from repro.robots.scheduler import FsyncScheduler
from tests.conftest import generic_cloud


def terminal_config(points, seed=0) -> Configuration:
    frames = random_frames(len(points), np.random.default_rng(seed))
    scheduler = FsyncScheduler(psi_sym, frames)
    return scheduler.run(points, stop_condition=is_sym_terminal,
                         max_rounds=20).final


def assert_perfect_matching(config, embedded, destinations):
    """Destinations must be a bijection onto the embedded multiset."""
    remaining = [np.asarray(p, dtype=float) for p in embedded]
    for d in destinations:
        hit = None
        for i, q in enumerate(remaining):
            if float(np.linalg.norm(d - q)) <= 1e-6 * max(
                    config.radius, 1.0):
                hit = i
                break
        assert hit is not None, "destination not in the embedded pattern"
        remaining.pop(hit)
    assert not remaining


class TestPerfectMatching:
    @pytest.mark.parametrize("initial,target_factory", [
        ("cube", lambda: named_pattern("octagon")),
        ("cube", lambda: named_pattern("square_antiprism")),
        ("octahedron", lambda: polyhedra.prism(3)),
        ("icosahedron", lambda: polyhedra.antiprism(6)),
    ])
    def test_bijection(self, initial, target_factory):
        target = target_factory()
        config = terminal_config(named_pattern(initial))
        embedded = embed_target(config, target)
        destinations = match_configuration_to_pattern(config, embedded)
        assert len(destinations) == config.n
        assert_perfect_matching(config, embedded, destinations)

    def test_c1_case(self):
        config = Configuration(generic_cloud(8, seed=7))
        embedded = embed_target(config, named_pattern("cube"))
        destinations = match_configuration_to_pattern(config, embedded)
        assert_perfect_matching(config, embedded, destinations)

    def test_identity_case_nobody_moves(self, cube):
        config = Configuration(cube)
        destinations = match_configuration_to_pattern(config, cube)
        for d, p in zip(destinations, config.points):
            assert np.allclose(d, p)

    def test_gather_case(self, octagon):
        config = Configuration(octagon)
        target = [config.center] * 8
        destinations = match_configuration_to_pattern(config, target)
        assert all(np.allclose(d, config.center) for d in destinations)

    def test_size_mismatch(self, cube):
        config = Configuration(cube)
        with pytest.raises(MatchingError):
            match_configuration_to_pattern(config, cube[:-1])


class TestConflictResolution:
    def test_paper_figure31_conflict(self):
        """The expanded-cube / truncated-cube conflict of Figure 31.

        Robots sit near octahedron face centers (expanded cube), and
        targets sit near cube vertices rotated so each robot has two
        equally-near targets; the chirality rule must resolve the
        cycle into a perfect matching.
        """
        from repro.groups.catalog import octahedral_group
        from repro.geometry.rotations import rotation_about_axis

        group = octahedral_group()
        # Robots: free O-orbit clustered near the 3-fold axes (like the
        # expanded cube).
        diagonal = np.array([1.0, 1.0, 1.0]) / np.sqrt(3)
        seed_p = diagonal + 0.12 * np.array([1.0, -1.0, 0.0]) / np.sqrt(2)
        robots = group.orbit(seed_p / np.linalg.norm(seed_p))
        config = Configuration(robots)
        # Targets: the O-orbit of the seed rotated 60 degrees about its
        # diagonal — every robot ends up equidistant from the two
        # neighbouring targets of its 6-cycle around the diagonal.
        spin = rotation_about_axis(diagonal, np.pi / 3.0)
        seed_f = spin @ (seed_p / np.linalg.norm(seed_p))
        targets = group.orbit(seed_f)
        assert len(targets) == len(robots) == 24
        destinations = match_configuration_to_pattern(config, targets)
        assert_perfect_matching(config, targets, destinations)

    def test_multiplicity_capacity(self):
        # 24 robots (free O-orbit) onto cube vertices x3.
        from repro.groups.catalog import octahedral_group
        from repro.patterns.orbits import transitive_set

        initial = transitive_set(octahedral_group(), mu=1)
        config = Configuration(initial)
        embedded = embed_target(config, named_pattern("cube") * 3)
        destinations = match_configuration_to_pattern(config, embedded)
        # Each vertex must receive exactly 3 robots.
        counts = {}
        for d in destinations:
            key = tuple(np.round(d, 5))
            counts[key] = counts.get(key, 0) + 1
        assert sorted(counts.values()) == [3] * 8


class TestRankPreservation:
    def test_orbit_ranks_match(self):
        # Two-orbit initial (octahedron+cube composite after psi_sym)
        # onto a two-ring planar target: inner orbit must map to the
        # inner ring.
        from repro.patterns.library import compose_shells
        from repro.geometry.polygons import regular_polygon

        initial = compose_shells(named_pattern("octahedron"),
                                 named_pattern("cube"))
        config = terminal_config(initial, seed=4)
        target = regular_polygon(7, radius=0.5)
        target += regular_polygon(7, radius=1.0, phase=0.2)
        # n mismatch guard: composite has 14 robots, target 14 points.
        assert config.n == len(target)
        embedded = embed_target(config, target)
        destinations = match_configuration_to_pattern(config, embedded)
        center = config.center
        # Both rings are fully used.
        dest_radii = sorted(round(float(np.linalg.norm(d - center))
                                  / config.radius, 3)
                            for d in destinations)
        assert dest_radii == [0.5] * 7 + [1.0] * 7
        # The strictly inner robots (the broken octahedron shell) must
        # land on the inner ring — orbit rank preserves radius order.
        radii = [float(np.linalg.norm(p - center))
                 for p in config.points]
        threshold = (min(radii) + max(radii)) / 2.0
        for i, r in enumerate(radii):
            if r < threshold:
                d = float(np.linalg.norm(destinations[i] - center))
                assert d == pytest.approx(0.5 * config.radius, rel=1e-6)
