"""Tests for the polyhedral embedding cases of Section 6.1.

The hardest target embeddings are ``γ(P) = T`` with ``γ(F) = O`` and
``γ(F) = I`` (the paper's Figure 28, including the two icosahedral
extensions of a tetrahedral arrangement that the paper's 'black/white
fan' construction disambiguates — here resolved by the equivariant
chiral signature).
"""

import numpy as np
import pytest

from repro import form_pattern
from repro.core.configuration import Configuration
from repro.core.symmetricity import symmetricity
from repro.groups.catalog import octahedral_group, tetrahedral_group
from repro.patterns.library import named_pattern
from repro.patterns.orbits import transitive_set
from repro.robots.adversary import symmetric_frames
from repro.robots.algorithms.embedding import embed_target


@pytest.fixture
def free_t_orbit():
    """12 robots on a free orbit of T: γ(P) = T, all axes unoccupied."""
    return transitive_set(tetrahedral_group(), mu=1)


class TestTToOAndI:
    def test_gamma_and_rho(self, free_t_orbit):
        config = Configuration(free_t_orbit)
        assert str(config.rotation_group.spec) == "T"
        assert {str(s) for s in symmetricity(config).maximal} == {"T"}

    @pytest.mark.parametrize("target_name", ["cuboctahedron",
                                             "icosahedron"])
    def test_embedding_aligns_t_on_free_axes(self, free_t_orbit,
                                             target_name):
        config = Configuration(free_t_orbit)
        target = named_pattern(target_name)
        embedded = embed_target(config, target)
        # Every rotation of γ(P) = T must preserve the embedded copy.
        center = config.center
        slack = 1e-5 * config.radius
        for mat in config.rotation_group.elements:
            for p in embedded:
                image = center + mat @ (p - center)
                assert any(np.linalg.norm(image - q) <= slack
                           for q in embedded)

    @pytest.mark.parametrize("target_name", ["cuboctahedron",
                                             "icosahedron"])
    def test_formation_random_frames(self, free_t_orbit, target_name):
        result = form_pattern(free_t_orbit, named_pattern(target_name),
                              seed=1)
        assert result.reached

    @pytest.mark.parametrize("target_name", ["cuboctahedron",
                                             "icosahedron"])
    def test_formation_sigma_t_frames(self, free_t_orbit, target_name):
        config = Configuration(free_t_orbit)
        rho = symmetricity(config)
        spec = next(s for s in rho.maximal if str(s) == "T")
        frames = symmetric_frames(config, rho.witness(spec),
                                  np.random.default_rng(3))
        result = form_pattern(free_t_orbit, named_pattern(target_name),
                              frames=frames)
        assert result.reached


class TestOFreeOrbit:
    def test_free_o_orbit_to_itself_rotated(self):
        from repro.geometry.rotations import rotation_about_axis

        points = transitive_set(octahedral_group(), mu=1)
        rot = rotation_about_axis([1.0, 2.0, 3.0], 0.8)
        target = [2.0 * (rot @ p) for p in points]
        result = form_pattern(points, target, seed=2)
        assert result.reached

    def test_free_o_orbit_to_tripled_octahedron(self):
        points = transitive_set(octahedral_group(), mu=1)
        target = named_pattern("octahedron") * 4
        result = form_pattern(points, target, seed=4)
        assert result.reached
