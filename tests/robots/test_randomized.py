"""Tests for randomized pattern formation (beyond Theorem 1.1)."""

import numpy as np
import pytest

from repro.core.configuration import Configuration
from repro.core.formability import is_formable
from repro.core.symmetricity import symmetricity
from repro.patterns.library import named_pattern
from repro.robots.adversary import random_frames, symmetric_frames
from repro.robots.algorithms.randomized import (
    make_randomized_formation_algorithm,
)
from repro.robots.scheduler import FsyncScheduler


def run_randomized(initial, target, frames, algo_seed=42, max_rounds=40):
    rng = np.random.default_rng(algo_seed)
    algorithm = make_randomized_formation_algorithm(target, rng)
    scheduler = FsyncScheduler(algorithm, frames, target=target)
    return scheduler.run(
        initial, stop_condition=lambda c: c.is_similar_to(target),
        max_rounds=max_rounds)


class TestBeyondDeterministicBound:
    def test_octagon_to_cube(self, cube, octagon):
        # Deterministically impossible (C8 in rho(P), not in rho(cube)).
        assert not is_formable(Configuration(octagon),
                               Configuration(cube))
        frames = random_frames(8, np.random.default_rng(0))
        result = run_randomized(octagon, cube, frames)
        assert result.reached

    def test_octagon_to_cube_under_symmetric_frames(self, cube, octagon):
        # Even the sigma(P) = C8 adversary loses against random bits.
        config = Configuration(octagon)
        rho = symmetricity(config)
        witness = rho.witness(rho.maximal[0])
        frames = symmetric_frames(config, witness,
                                  np.random.default_rng(1))
        result = run_randomized(octagon, cube, frames)
        assert result.reached

    def test_icosahedron_to_cuboctahedron(self):
        ico = named_pattern("icosahedron")
        cuboct = named_pattern("cuboctahedron")
        assert not is_formable(Configuration(ico), Configuration(cuboct))
        frames = random_frames(12, np.random.default_rng(2))
        result = run_randomized(ico, cuboct, frames, max_rounds=60)
        assert result.reached


class TestBehaviour:
    def test_no_multiplicity_created(self, cube, octagon):
        frames = random_frames(8, np.random.default_rng(3))
        result = run_randomized(octagon, cube, frames)
        for config in result.configurations:
            assert not config.has_multiplicity

    def test_stays_once_formed(self, cube, octagon):
        frames = random_frames(8, np.random.default_rng(4))
        result = run_randomized(octagon, cube, frames)
        rng = np.random.default_rng(5)
        algorithm = make_randomized_formation_algorithm(cube, rng)
        scheduler = FsyncScheduler(algorithm, frames, target=cube)
        after = scheduler.step(result.final.points)
        for a, b in zip(after, result.final.points):
            assert np.allclose(a, b, atol=1e-9)

    def test_solvable_instances_still_work(self, cube, octagon):
        # The randomized wrapper must not regress deterministic cases.
        frames = random_frames(8, np.random.default_rng(6))
        result = run_randomized(cube, octagon, frames)
        assert result.reached
