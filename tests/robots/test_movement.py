"""Tests for the rigid / non-rigid movement models."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.patterns.library import named_pattern
from repro.robots.adversary import identity_frames, random_frames
from repro.robots.algorithms.pattern_formation import (
    make_pattern_formation_algorithm,
)
from repro.robots.model import OBLIVIOUS_STAY
from repro.robots.movement import NonRigidMovement, RigidMovement
from repro.robots.scheduler import FsyncScheduler


class TestRigidMovement:
    def test_reaches_destination(self):
        model = RigidMovement()
        assert np.allclose(
            model.execute(np.zeros(3), np.array([1.0, 2.0, 3.0])),
            [1.0, 2.0, 3.0])

    def test_default_in_scheduler(self, cube):
        scheduler = FsyncScheduler(OBLIVIOUS_STAY, identity_frames(8))
        assert isinstance(scheduler.movement, RigidMovement)


class TestNonRigidMovement:
    def test_short_tracks_reach_destination(self, rng):
        model = NonRigidMovement(delta=1.0, rng=rng)
        dest = np.array([0.5, 0.0, 0.0])
        assert np.allclose(model.execute(np.zeros(3), dest), dest)

    def test_long_tracks_stop_on_segment(self, rng):
        model = NonRigidMovement(delta=0.5, rng=rng)
        start = np.zeros(3)
        dest = np.array([10.0, 0.0, 0.0])
        for _ in range(50):
            reached = model.execute(start, dest)
            travelled = float(np.linalg.norm(reached - start))
            assert travelled >= 0.5 - 1e-12
            assert travelled <= 10.0 + 1e-12
            # On the segment: y = z = 0.
            assert abs(reached[1]) < 1e-12 and abs(reached[2]) < 1e-12

    def test_invalid_delta(self, rng):
        with pytest.raises(SimulationError):
            NonRigidMovement(delta=0.0, rng=rng)

    def test_large_delta_equals_rigid(self, rng, cube):
        # With delta >= every track length, non-rigid == rigid.
        octagon = named_pattern("octagon")
        algorithm = make_pattern_formation_algorithm(octagon)
        frames = random_frames(8, np.random.default_rng(1))
        rigid = FsyncScheduler(algorithm, frames, target=octagon)
        nonrigid = FsyncScheduler(
            algorithm, frames, target=octagon,
            movement=NonRigidMovement(delta=100.0,
                                      rng=np.random.default_rng(2)))
        a = rigid.step(cube)
        b = nonrigid.step(cube)
        for x, y in zip(a, b):
            assert np.allclose(x, y)

    def test_formation_can_survive_nonrigid_interruptions(self):
        # Not guaranteed by the paper (rigid model), but oblivious
        # psi_PF recomputes each round; with a fair adversary the
        # gather target is still reached (every interrupted move makes
        # progress toward the unique gathering point).
        initial = [np.random.default_rng(3).normal(size=3)
                   for _ in range(6)]
        target = [np.zeros(3)] * 6
        frames = random_frames(6, np.random.default_rng(4))
        algorithm = make_pattern_formation_algorithm(target)
        scheduler = FsyncScheduler(
            algorithm, frames, target=target,
            movement=NonRigidMovement(delta=0.05,
                                      rng=np.random.default_rng(5)))
        result = scheduler.run(
            initial, stop_condition=lambda c: c.is_similar_to(target),
            max_rounds=200)
        assert result.reached
