"""Tests for adversarial frame construction (Lemma 2 / Lemma 4)."""

import numpy as np
import pytest

from repro.core.configuration import Configuration
from repro.core.symmetricity import symmetricity
from repro.errors import SimulationError
from repro.groups.catalog import cyclic_group
from repro.patterns.library import named_pattern
from repro.robots.adversary import (
    identity_frames,
    random_frames,
    symmetric_frames,
)
from repro.robots.model import Observation
from repro.robots.scheduler import FsyncScheduler


def observation_key(observation: Observation) -> tuple:
    """Canonical multiset key of an observation's points."""
    return tuple(sorted(tuple(np.round(p, 6)) for p in observation.points))


class TestBasicFrames:
    def test_identity_frames(self):
        frames = identity_frames(4)
        assert len(frames) == 4
        assert all(f.scale == 1.0 for f in frames)

    def test_random_frames_distinct(self, rng):
        frames = random_frames(5, rng)
        rotations = {tuple(np.round(f.rotation.ravel(), 6))
                     for f in frames}
        assert len(rotations) == 5


class TestSymmetricFrames:
    def test_symmetric_robots_observe_identically(self, rng, cube):
        config = Configuration(cube)
        rho = symmetricity(config)
        witness = rho.witness(rho.maximal[0])  # D4 on the cube
        frames = symmetric_frames(config, witness, rng)

        keys = []
        for i, (p, frame) in enumerate(zip(cube, frames)):
            local = [frame.observe(q, p) for q in cube]
            keys.append(observation_key(Observation(local, self_index=i)))
        # One orbit of 8 robots under D4 (order 8): all observations
        # identical.
        assert len(set(keys)) == 1

    def test_orbitwise_identical_observations_icosahedron(self, rng):
        pts = named_pattern("icosahedron")
        config = Configuration(pts)
        rho = symmetricity(config)
        spec = next(s for s in rho.maximal if str(s) == "T")
        witness = rho.witness(spec)
        frames = symmetric_frames(config, witness, rng)
        keys = []
        for i, (p, frame) in enumerate(zip(pts, frames)):
            local = [frame.observe(q, p) for q in pts]
            keys.append(observation_key(Observation(local, self_index=i)))
        # 12 robots under T (order 12): a single orbit again.
        assert len(set(keys)) == 1

    def test_sigma_preserved_under_any_algorithm(self, rng, cube):
        # Lemma 2: whatever the robots do, the configuration keeps a
        # supergroup of sigma(P).
        from repro.groups.subgroups import is_abstract_subgroup

        config = Configuration(cube)
        rho = symmetricity(config)
        spec = rho.maximal[0]
        witness = rho.witness(spec)
        frames = symmetric_frames(config, witness, rng)

        def arbitrary_algorithm(obs: Observation) -> np.ndarray:
            # Some deterministic nonsense move based on the view.
            far = max(obs.points, key=lambda p: float(np.linalg.norm(p)))
            return 0.3 * far + np.array([0.1, 0.05, -0.2])

        scheduler = FsyncScheduler(arbitrary_algorithm, frames)
        points = cube
        for _ in range(3):
            points = scheduler.step(points)
            report = Configuration(points).symmetry
            assert report.kind in ("finite", "collinear", "degenerate")
            if report.kind == "finite":
                assert is_abstract_subgroup(spec, report.group.spec)

    def test_rejects_non_free_witness(self, rng, cube):
        config = Configuration(cube)
        # C3 about a cube diagonal fixes two vertices: not free.
        bad = cyclic_group(3, axis=(1, 1, 1))
        with pytest.raises(SimulationError):
            symmetric_frames(config, bad, rng)
