"""End-to-end tests for ψ_PF (Algorithm 6.1, Theorem 6.1)."""

import numpy as np
import pytest

from repro.core.configuration import Configuration
from repro.core.formability import is_formable
from repro.core.symmetricity import symmetricity
from repro.errors import SimulationError
from repro.patterns import polyhedra
from repro.patterns.library import compose_shells, named_pattern
from repro.robots.adversary import random_frames, symmetric_frames
from repro.robots.algorithms.pattern_formation import (
    make_pattern_formation_algorithm,
)
from repro.robots.scheduler import FsyncScheduler
from tests.conftest import generic_cloud


def run_formation(initial, target, frames=None, seed=0, max_rounds=30):
    if frames is None:
        frames = random_frames(len(initial), np.random.default_rng(seed))
    algorithm = make_pattern_formation_algorithm(target)
    scheduler = FsyncScheduler(algorithm, frames, target=target)
    return scheduler.run(
        initial, stop_condition=lambda c: c.is_similar_to(target),
        max_rounds=max_rounds)


class TestFigure1:
    """The paper's flagship example: cube → octagon / antiprism."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_cube_to_octagon(self, cube, octagon, seed):
        result = run_formation(cube, octagon, seed=seed)
        assert result.reached
        assert result.rounds <= 8

    @pytest.mark.parametrize("seed", [0, 1])
    def test_cube_to_square_antiprism(self, cube, square_antiprism, seed):
        result = run_formation(cube, square_antiprism, seed=seed)
        assert result.reached

    def test_under_worst_case_frames(self, cube, octagon,
                                     square_antiprism):
        config = Configuration(cube)
        rho = symmetricity(config)
        witness = rho.witness(rho.maximal[0])
        for target in (octagon, square_antiprism):
            frames = symmetric_frames(config, witness,
                                      np.random.default_rng(3))
            result = run_formation(cube, target, frames=frames)
            assert result.reached


class TestVariedInstances:
    CASES = [
        ("generic8 -> cube",
         lambda: generic_cloud(8, seed=4), lambda: named_pattern("cube")),
        ("octahedron -> hexagon",
         lambda: named_pattern("octahedron"),
         lambda: polyhedra.regular_polygon_pattern(6)),
        ("octahedron -> triangular prism",
         lambda: named_pattern("octahedron"), lambda: polyhedra.prism(3)),
        ("prism6 -> antiprism6",
         lambda: polyhedra.prism(6), lambda: polyhedra.antiprism(6)),
        ("antiprism8 -> cube... (antiprism4)",
         lambda: named_pattern("square_antiprism"),
         lambda: named_pattern("cube")),
        ("composite -> 14-gon",
         lambda: compose_shells(named_pattern("octahedron"),
                                named_pattern("cube")),
         lambda: polyhedra.regular_polygon_pattern(14)),
        ("pyramid -> pentagon",
         lambda: polyhedra.pyramid(4),
         lambda: polyhedra.regular_polygon_pattern(5)),
    ]

    @pytest.mark.parametrize("name,initial_factory,target_factory", CASES,
                             ids=[c[0] for c in CASES])
    def test_formation_succeeds(self, name, initial_factory,
                                target_factory):
        initial = initial_factory()
        target = target_factory()
        assert is_formable(Configuration(initial), Configuration(target))
        result = run_formation(initial, target)
        assert result.reached

    def test_stability_after_formation(self, cube, octagon):
        # Once F is formed, psi_pf keeps every robot in place.
        result = run_formation(cube, octagon)
        frames = random_frames(8, np.random.default_rng(9))
        algorithm = make_pattern_formation_algorithm(octagon)
        scheduler = FsyncScheduler(algorithm, frames, target=octagon)
        after = scheduler.step(result.final.points)
        for a, b in zip(after, result.final.points):
            assert np.allclose(a, b, atol=1e-9)


class TestSpecialTargets:
    def test_point_formation(self, cube):
        target = [np.zeros(3)] * 8
        result = run_formation(cube, target)
        assert result.reached

    def test_multiplicity_target(self):
        from repro.groups.catalog import octahedral_group
        from repro.patterns.orbits import transitive_set

        initial = transitive_set(octahedral_group(), mu=1)
        target = named_pattern("cube") * 3
        result = run_formation(initial, target)
        assert result.reached

    def test_collinear_initial(self):
        initial = [np.array([0, 0, z], dtype=float)
                   for z in (-2.0, -1.0, 1.0, 2.0)]
        target = polyhedra.regular_polygon_pattern(4)
        result = run_formation(initial, target)
        assert result.reached

    def test_polygon_to_itself_rotated(self, octagon):
        from repro.geometry.rotations import rotation_about_axis

        rot = rotation_about_axis([1, 1, 0], 1.1)
        target = [2.0 * (rot @ p) + np.array([1.0, 2.0, 3.0])
                  for p in octagon]
        result = run_formation(octagon, target)
        assert result.reached
        assert result.rounds == 0  # already similar


class TestTargetViaObservation:
    def test_target_from_scheduler(self, cube, octagon):
        algorithm = make_pattern_formation_algorithm()  # no baked target
        frames = random_frames(8, np.random.default_rng(2))
        scheduler = FsyncScheduler(algorithm, frames, target=octagon)
        result = scheduler.run(
            cube, stop_condition=lambda c: c.is_similar_to(octagon),
            max_rounds=30)
        assert result.reached

    def test_missing_target_raises(self, cube):
        algorithm = make_pattern_formation_algorithm()
        frames = random_frames(8, np.random.default_rng(2))
        scheduler = FsyncScheduler(algorithm, frames)  # no target
        with pytest.raises(SimulationError):
            scheduler.step(cube)


class TestPublicApi:
    def test_form_pattern_wrapper(self, cube, octagon):
        from repro import form_pattern

        result = form_pattern(cube, octagon, seed=1)
        assert result.reached

    def test_form_pattern_rejects_unsolvable(self, cube, octagon):
        from repro import UnsolvableError, form_pattern

        with pytest.raises(UnsolvableError):
            form_pattern(octagon, cube)

    def test_form_pattern_skip_check_runs_anyway(self, cube):
        from repro import form_pattern

        result = form_pattern(cube, cube, check=False)
        assert result.reached
