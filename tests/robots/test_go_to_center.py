"""Tests for Algorithm 4.1 (go-to-center) and Lemma 7."""

import numpy as np
import pytest

from repro.core.configuration import Configuration
from repro.core.symmetricity import symmetricity
from repro.errors import GeometryError
from repro.geometry.transforms import Similarity
from repro.patterns.library import named_pattern
from repro.robots.adversary import random_frames
from repro.robots.algorithms.go_to_center import (
    EPSILON_FRACTION,
    go_to_center_algorithm,
    go_to_center_destination,
    recognize_goc_polyhedron,
)
from repro.robots.scheduler import FsyncScheduler

GOC = ["tetrahedron", "octahedron", "cube", "cuboctahedron",
       "icosahedron", "dodecahedron", "icosidodecahedron"]


class TestRecognition:
    @pytest.mark.parametrize("name", GOC)
    def test_recognizes_all_seven(self, name):
        assert recognize_goc_polyhedron(named_pattern(name)) == name

    @pytest.mark.parametrize("name", ["octagon", "square_antiprism",
                                      "pentagonal_prism", "square_pyramid"])
    def test_rejects_others(self, name):
        assert recognize_goc_polyhedron(named_pattern(name)) is None

    def test_recognizes_under_similarity(self, rng):
        sim = Similarity.random(rng)
        pts = sim.apply_all(named_pattern("dodecahedron"))
        assert recognize_goc_polyhedron(pts) == "dodecahedron"

    def test_distinguishes_icosahedron_from_cuboctahedron(self):
        # Both have 12 vertices; the rotation group separates them.
        assert recognize_goc_polyhedron(
            named_pattern("icosahedron")) == "icosahedron"
        assert recognize_goc_polyhedron(
            named_pattern("cuboctahedron")) == "cuboctahedron"

    def test_rejects_near_miss(self, cube):
        squeezed = [p * np.array([1.0, 1.0, 0.8]) for p in cube]
        assert recognize_goc_polyhedron(squeezed) is None


class TestDestination:
    @pytest.mark.parametrize("name", GOC)
    def test_destination_near_a_face_center(self, name):
        from repro.geometry.convex import ConvexPolyhedron

        pts = named_pattern(name)
        hull = ConvexPolyhedron(pts)
        epsilon = hull.min_edge_length() * EPSILON_FRACTION
        dest = go_to_center_destination(pts, 0)
        distances = [float(np.linalg.norm(dest - f.center))
                     for f in hull.faces_of_vertex(0)]
        assert min(distances) == pytest.approx(epsilon, rel=1e-6)

    def test_cuboctahedron_targets_triangles_only(self):
        from repro.geometry.convex import ConvexPolyhedron

        pts = named_pattern("cuboctahedron")
        hull = ConvexPolyhedron(pts)
        for i in range(12):
            dest = go_to_center_destination(pts, i)
            face = min(hull.faces,
                       key=lambda f: float(np.linalg.norm(dest - f.center)))
            assert face.size == 3

    def test_icosidodecahedron_targets_pentagons_only(self):
        from repro.geometry.convex import ConvexPolyhedron

        pts = named_pattern("icosidodecahedron")
        hull = ConvexPolyhedron(pts)
        for i in range(30):
            dest = go_to_center_destination(pts, i)
            face = min(hull.faces,
                       key=lambda f: float(np.linalg.norm(dest - f.center)))
            assert face.size == 5

    def test_destination_strictly_inside(self, cube):
        dest = go_to_center_destination(cube, 0)
        assert float(np.linalg.norm(dest)) < 1.0

    def test_rejects_non_goc_shape(self):
        with pytest.raises(GeometryError):
            go_to_center_destination(named_pattern("octagon"), 0)

    def test_destinations_of_different_robots_disjoint(self, cube):
        dests = {tuple(np.round(go_to_center_destination(cube, i), 9))
                 for i in range(8)}
        assert len(dests) == 8


class TestLemma7:
    @pytest.mark.parametrize("name", GOC)
    def test_one_step_lands_in_rho(self, name):
        pts = named_pattern(name)
        rho = symmetricity(Configuration(pts))
        for seed in range(3):
            frames = random_frames(len(pts),
                                   np.random.default_rng(seed))
            after = FsyncScheduler(go_to_center_algorithm, frames).step(pts)
            config = Configuration(after)
            report = config.symmetry
            assert report.kind == "finite"
            assert report.group.spec in rho.specs
            assert not config.has_multiplicity

    def test_noop_on_other_configurations(self):
        pts = named_pattern("pentagonal_prism")
        frames = random_frames(len(pts), np.random.default_rng(0))
        after = FsyncScheduler(go_to_center_algorithm, frames).step(pts)
        for a, b in zip(after, pts):
            assert np.allclose(a, b, atol=1e-9)
