"""Tests for the FSYNC scheduler."""

import numpy as np
import pytest

from repro.core.configuration import Configuration
from repro.errors import SimulationError
from repro.robots.adversary import identity_frames, random_frames
from repro.robots.model import OBLIVIOUS_STAY, Observation
from repro.robots.scheduler import FsyncScheduler
from tests.conftest import generic_cloud


def go_toward_centroid(observation: Observation) -> np.ndarray:
    """Test algorithm: move halfway toward the observed centroid."""
    centroid = np.mean(observation.points, axis=0)
    return centroid / 2.0


class TestStep:
    def test_stay_keeps_positions(self, cube):
        scheduler = FsyncScheduler(OBLIVIOUS_STAY, identity_frames(8))
        after = scheduler.step(cube)
        for a, b in zip(after, cube):
            assert np.allclose(a, b)

    def test_synchronous_semantics(self):
        # All robots observe P(t), none observes a partial move: with
        # the centroid algorithm and two robots, both must land at
        # symmetric midpoints simultaneously.
        pts = [np.array([0.0, 0, 0]), np.array([4.0, 0, 0])]
        scheduler = FsyncScheduler(go_toward_centroid, identity_frames(2))
        after = scheduler.step(pts)
        assert np.allclose(after[0], [1.0, 0, 0])
        assert np.allclose(after[1], [3.0, 0, 0])

    def test_frame_invariance_of_contraction(self, rng):
        # The centroid algorithm is similarity-equivariant, so the
        # global trajectory must be frame-independent.
        pts = generic_cloud(6, seed=3)
        a = FsyncScheduler(go_toward_centroid,
                           identity_frames(6)).step(pts)
        b = FsyncScheduler(go_toward_centroid,
                           random_frames(6, rng)).step(pts)
        for x, y in zip(a, b):
            assert np.allclose(x, y, atol=1e-9)

    def test_frame_count_mismatch(self, cube):
        scheduler = FsyncScheduler(OBLIVIOUS_STAY, identity_frames(5))
        with pytest.raises(SimulationError):
            scheduler.step(cube)

    def test_bad_algorithm_output_rejected(self, cube):
        scheduler = FsyncScheduler(lambda obs: np.array([np.inf, 0, 0]),
                                   identity_frames(8))
        with pytest.raises(SimulationError):
            scheduler.step(cube)


class TestRun:
    def test_stop_condition_checked_on_initial(self, cube):
        scheduler = FsyncScheduler(OBLIVIOUS_STAY, identity_frames(8))
        result = scheduler.run(cube, stop_condition=lambda c: True)
        assert result.reached
        assert result.rounds == 0

    def test_fixpoint_detection(self, cube):
        scheduler = FsyncScheduler(OBLIVIOUS_STAY, identity_frames(8))
        result = scheduler.run(cube, stop_condition=lambda c: False,
                               max_rounds=5)
        assert result.fixpoint
        assert not result.reached
        assert result.rounds == 1

    def test_timeout_raises_with_stop_condition(self):
        pts = generic_cloud(4, seed=1)
        scheduler = FsyncScheduler(go_toward_centroid, identity_frames(4))
        with pytest.raises(SimulationError):
            scheduler.run(pts, stop_condition=lambda c: False,
                          max_rounds=3)

    def test_open_run_returns_trace(self):
        pts = generic_cloud(4, seed=1)
        scheduler = FsyncScheduler(go_toward_centroid, identity_frames(4))
        result = scheduler.run(pts, max_rounds=3)
        assert result.rounds == 3
        assert len(result.configurations) == 4
        assert isinstance(result.final, Configuration)

    def test_target_passed_to_observation(self, cube):
        seen = []

        def probe(obs: Observation) -> np.ndarray:
            seen.append(obs.target is not None)
            return obs.own_position()

        scheduler = FsyncScheduler(probe, identity_frames(8), target=cube)
        scheduler.step(cube)
        assert all(seen)
