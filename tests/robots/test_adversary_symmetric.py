"""``symmetric_frames`` realizes ``σ(P) = G`` for every witnessed
``G ∈ ϱ(P)`` on the paper's Table 2 transitive sets.

The realized symmetricity ``σ(P)`` of a configuration-with-frames is
read off its observation-equivalence partition: robots whose Look
phases return identical local point multisets are indistinguishable
forever (Lemma 2).  For frames built from a witness of ``G`` that
partition must be exactly the orbit partition of ``G`` — every class
of size ``|G|`` (the sharing direction, ``σ ⪰ G``) and no two distinct
orbits merged (the non-collapse direction, ``σ = G`` for the drawn
frames).
"""

import numpy as np
import pytest

from repro.analysis.tables import PAPER_TABLE2
from repro.core.configuration import Configuration
from repro.core.decomposition import orbit_decomposition
from repro.core.symmetricity import symmetricity
from repro.errors import SimulationError
from repro.groups.catalog import group_from_spec
from repro.groups.group import GroupSpec
from repro.patterns.orbits import transitive_set
from repro.robots.adversary import symmetric_frames


def _observation_key(config, frames, index, decimals=6):
    """The robot's Look result as a comparable (rounded) multiset."""
    position = config.points[index]
    local = sorted(
        tuple(np.round(frames[index].observe(p, position), decimals))
        for p in config.points
    )
    return tuple(local)


def _equivalence_partition(config, frames):
    classes: dict[tuple, list[int]] = {}
    for i in range(config.n):
        classes.setdefault(_observation_key(config, frames, i), []).append(i)
    return sorted(sorted(c) for c in classes.values())


def _table2_configurations():
    for name, mu, cardinality, _shape in PAPER_TABLE2:
        group = group_from_spec(GroupSpec.parse(name))
        points = transitive_set(group, mu=mu)
        assert len(points) == cardinality
        yield f"{name},{mu}", Configuration(points)


CASES = list(_table2_configurations())


@pytest.mark.parametrize("label,config", CASES,
                         ids=[label for label, _ in CASES])
def test_every_witnessed_group_is_realized(label, config):
    rho = symmetricity(config)
    checked = 0
    for spec in sorted(rho.specs):
        witness = rho.witness(spec)
        if witness is None:
            continue
        rng = np.random.default_rng(
            abs(hash((label, str(spec)))) % (2**32))
        frames = symmetric_frames(config, witness, rng)
        partition = _equivalence_partition(config, frames)
        orbits = sorted(sorted(o) for o in
                        orbit_decomposition(config, witness))
        assert partition == orbits, (
            f"{label}: frames for {spec} realize partition {partition}, "
            f"expected the witness orbits {orbits}")
        assert all(len(c) == witness.order for c in partition), (
            f"{label}: some observation class is not a free {spec} orbit")
        checked += 1
    assert checked > 0, f"{label}: no witnessed groups to realize"


@pytest.mark.parametrize("label,config", CASES,
                         ids=[label for label, _ in CASES])
def test_non_free_witness_is_rejected(label, config):
    """A symmetry that fixes a robot (non-free action — its axis is
    occupied) cannot receive symmetric frames; the adversary must
    refuse, not mis-assign."""
    from repro.geometry.rotations import rotation_about_axis
    from repro.groups.group import RotationGroup

    group = config.symmetry.group
    occupied = [a for a in group.axes if a.occupied]
    if not occupied:
        pytest.skip("free orbit: every axis of gamma(P) is unoccupied")
    axis = occupied[0]
    pinned = RotationGroup(
        [rotation_about_axis(axis.direction, 2.0 * np.pi * k / axis.fold)
         for k in range(axis.fold)],
        spec=GroupSpec.parse(f"C{axis.fold}"))
    with pytest.raises(SimulationError):
        symmetric_frames(config, pinned, np.random.default_rng(0))
