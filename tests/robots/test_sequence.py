"""Tests for cyclic pattern-sequence formation (Das et al. analogue)."""

import numpy as np
import pytest

from repro.core.configuration import Configuration
from repro.errors import UnsolvableError
from repro.patterns import polyhedra
from repro.patterns.library import named_pattern
from repro.robots.adversary import random_frames
from repro.robots.algorithms.sequence import (
    make_sequence_formation_algorithm,
    validate_sequence,
)
from repro.robots.scheduler import FsyncScheduler


def d6_sequence():
    """Three pairwise non-similar patterns sharing symmetricity {D6}."""
    return [polyhedra.prism(6), polyhedra.antiprism(6),
            polyhedra.prism(6, height_ratio=0.3)]


class TestValidateSequence:
    def test_valid_sequence(self):
        configs = validate_sequence(d6_sequence())
        assert len(configs) == 3

    def test_too_short(self):
        with pytest.raises(UnsolvableError):
            validate_sequence([polyhedra.prism(6)])

    def test_size_mismatch(self):
        with pytest.raises(UnsolvableError):
            validate_sequence([polyhedra.prism(6), polyhedra.prism(5)])

    def test_mismatched_symmetricity(self):
        with pytest.raises(UnsolvableError):
            validate_sequence([polyhedra.prism(6),
                               polyhedra.regular_polygon_pattern(12)])

    def test_similar_patterns_rejected(self):
        with pytest.raises(UnsolvableError):
            validate_sequence([polyhedra.prism(6),
                               polyhedra.prism(6, radius=3.0)])


class TestSequenceExecution:
    def test_cycles_through_patterns(self):
        patterns = d6_sequence()
        algorithm = make_sequence_formation_algorithm(patterns)
        frames = random_frames(12, np.random.default_rng(0))
        scheduler = FsyncScheduler(algorithm, frames)

        points = patterns[0]
        visits = []
        for _ in range(9):
            points = scheduler.step(points)
            config = Configuration(points)
            for i, pattern in enumerate(patterns):
                if config.is_similar_to(pattern):
                    visits.append(i)
                    break
        # Starting at F_0 the execution must visit 1, 2, 0, 1, ...
        assert len(visits) >= 6
        for a, b in zip(visits, visits[1:]):
            assert b == (a + 1) % 3

    def test_transient_start_joins_the_cycle(self):
        patterns = d6_sequence()
        algorithm = make_sequence_formation_algorithm(patterns)
        rng = np.random.default_rng(5)
        start = [rng.normal(size=3) for _ in range(12)]
        frames = random_frames(12, np.random.default_rng(1))
        scheduler = FsyncScheduler(algorithm, frames)
        points = start
        reached = False
        for _ in range(10):
            points = scheduler.step(points)
            config = Configuration(points)
            if any(config.is_similar_to(p) for p in patterns):
                reached = True
                break
        assert reached
