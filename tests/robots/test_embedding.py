"""Tests for the target embedding F̃ (Section 6.1)."""

import numpy as np
import pytest

from repro.core.configuration import Configuration
from repro.errors import EmbeddingError
from repro.geometry.rotations import random_rotation
from repro.geometry.transforms import are_similar
from repro.patterns import polyhedra
from repro.patterns.library import named_pattern
from repro.robots.adversary import random_frames
from repro.robots.algorithms.embedding import embed_target
from repro.robots.algorithms.sym import is_sym_terminal, psi_sym
from repro.robots.scheduler import FsyncScheduler
from tests.conftest import generic_cloud


def terminal_config(points, seed=0) -> Configuration:
    """Run ψ_SYM to terminality and return the final configuration."""
    frames = random_frames(len(points), np.random.default_rng(seed))
    scheduler = FsyncScheduler(psi_sym, frames)
    return scheduler.run(points, stop_condition=is_sym_terminal,
                         max_rounds=20).final


class TestBasicProperties:
    def test_embedded_is_similar_to_target(self, octagon):
        config = terminal_config(named_pattern("cube"))
        embedded = embed_target(config, octagon)
        assert are_similar(embedded, octagon)

    def test_enclosing_balls_agree(self, octagon):
        from repro.geometry.balls import smallest_enclosing_ball

        config = terminal_config(named_pattern("cube"))
        embedded = embed_target(config, octagon)
        ball = smallest_enclosing_ball(embedded)
        assert np.allclose(ball.center, config.center, atol=1e-6)
        assert ball.radius == pytest.approx(config.radius, rel=1e-6)

    def test_size_mismatch_rejected(self, octagon):
        config = terminal_config(named_pattern("cube"))
        with pytest.raises(EmbeddingError):
            embed_target(config, octagon[:-1])

    def test_unsolvable_rejected(self):
        # Terminal config with gamma = D5 (prism orbit), target generic.
        config = Configuration(polyhedra.prism(5))
        with pytest.raises(EmbeddingError):
            embed_target(config, generic_cloud(10, seed=3))


class TestEquivariance:
    """embed(R·P) must equal R·embed(P) — the frame-independence core."""

    @pytest.mark.parametrize("initial,target_name", [
        ("cube", "octagon"),
        ("cube", "square_antiprism"),
        ("octahedron", "pentagonal_prism_placeholder"),
    ])
    def test_rotation_equivariance(self, rng, initial, target_name):
        if target_name == "pentagonal_prism_placeholder":
            target = polyhedra.prism(3)
        else:
            target = named_pattern(target_name)
        config = terminal_config(named_pattern(initial))
        embedded = embed_target(config, target)
        rot = random_rotation(rng)
        moved = Configuration([rot @ p for p in config.points])
        embedded_moved = embed_target(moved, target)
        expected = sorted(tuple(np.round(rot @ p, 5)) for p in embedded)
        got = sorted(tuple(np.round(p, 5)) for p in embedded_moved)
        for a, b in zip(expected, got):
            assert np.allclose(a, b, atol=1e-4)

    def test_c1_equivariance(self, rng):
        config = Configuration(generic_cloud(8, seed=6))
        target = named_pattern("cube")
        embedded = embed_target(config, target)
        rot = random_rotation(rng)
        moved = Configuration([rot @ p for p in config.points])
        embedded_moved = embed_target(moved, target)
        expected = sorted(tuple(np.round(rot @ p, 5)) for p in embedded)
        got = sorted(tuple(np.round(p, 5)) for p in embedded_moved)
        for a, b in zip(expected, got):
            assert np.allclose(a, b, atol=1e-4)

    def test_invariance_under_gamma_p(self):
        # F̃ must be invariant under every rotation preserving P.
        config = terminal_config(named_pattern("pentagonal_prism"))
        group = config.rotation_group
        assert str(group.spec) == "D5"
        target = polyhedra.antiprism(5)
        embedded = embed_target(config, target)
        center = config.center
        key = sorted(tuple(np.round(p - center, 5)) for p in embedded)
        for mat in group.elements:
            rotated = sorted(tuple(np.round(mat @ (p - center), 5))
                             for p in embedded)
            for a, b in zip(key, rotated):
                assert np.allclose(a, b, atol=1e-4)


class TestPolygonSpecialCases:
    def test_polygon_to_itself(self, octagon):
        config = Configuration(octagon)
        embedded = embed_target(config, list(reversed(octagon)))
        assert are_similar(embedded, octagon)

    def test_polygon_to_point(self, octagon):
        config = Configuration(octagon)
        target = [np.zeros(3)] * 8
        embedded = embed_target(config, target)
        assert all(np.allclose(p, config.center) for p in embedded)

    def test_polygon_to_other_pattern_rejected(self, octagon, cube):
        config = Configuration(octagon)
        with pytest.raises(EmbeddingError):
            embed_target(config, cube)


class TestGroupAlignment:
    def test_gamma_p_lands_on_free_axes(self, octagon):
        # After embedding, gamma(P)'s axes must be free axes of F̃.
        config = terminal_config(named_pattern("cube"))
        group = config.rotation_group
        embedded = embed_target(config, octagon)
        center = config.center
        slack = 1e-5 * config.radius
        for mat in group.elements:
            for p in embedded:
                image = center + mat @ (p - center)
                assert any(np.linalg.norm(image - q) <= slack
                           for q in embedded)

    def test_multiplicity_target(self):
        # 24 free-orbit robots -> cube vertices with multiplicity 3.
        from repro.groups.catalog import octahedral_group
        from repro.patterns.orbits import transitive_set

        initial = transitive_set(octahedral_group(), mu=1)
        config = Configuration(initial)
        target = named_pattern("cube") * 3
        embedded = embed_target(config, target)
        assert are_similar(embedded, target)
