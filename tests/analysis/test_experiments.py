"""Smoke tests for the experiment drivers behind the benchmarks."""

import pytest

from repro.analysis.experiments import (
    GOC_POLYHEDRA,
    baseline_2d_experiment,
    figure1_experiment,
    lemma7_experiment,
    plane_formation_experiment,
    theorem41_experiment,
)


class TestLemma7Driver:
    def test_small_run(self):
        rows = lemma7_experiment(trials=1)
        assert len(rows) == len(GOC_POLYHEDRA)
        assert all(row["all_in_rho"] for row in rows)

    def test_distribution_counts_sum(self):
        rows = lemma7_experiment(trials=2)
        for row in rows:
            assert sum(row["gamma_after"].values()) == 2


class TestTheorem41Driver:
    def test_small_run(self):
        rows = theorem41_experiment(trials=1)
        assert all(row["bound_7_holds"] for row in rows)
        assert all(row["gamma_in_rho"] for row in rows)
        assert any(row["initial"] == "cube+octahedron" for row in rows)


class TestFigure1Driver:
    def test_small_run(self):
        rows = figure1_experiment(trials=1)
        assert {row["target"] for row in rows} == {
            "octagon", "square_antiprism"}
        for row in rows:
            assert row["formed"] == row["trials"]
            assert row["gamma_P"] == "O"


class TestPlaneFormationDriver:
    def test_matches_disc2015(self):
        rows = {r["initial"]: r for r in plane_formation_experiment()}
        assert not rows["cuboctahedron"]["plane_formable"]
        assert not rows["icosahedron"]["plane_formable"]
        assert rows["cube"]["formed"]


class Test2DDriver:
    def test_predictions_consistent(self):
        for row in baseline_2d_experiment():
            assert row["predicted"] == (row["rho_F"] % row["rho_P"] == 0)
            if row["predicted"]:
                assert row["formed"]
