"""The parallel experiment runner (:mod:`repro.perf.parallel`).

The load-bearing property: fanning trials over a process pool is
*invisible* in the results — rows are byte-identical for any ``jobs``
value — and worker failures surface as clean exceptions, never a hung
or poisoned pool.
"""

import json
import os
from dataclasses import asdict

import pytest

import numpy as np

from repro import perf
from repro.analysis import experiments
from repro.errors import SimulationError
from repro.perf import parallel_map, seeded_trials, spawn_seeds


@pytest.fixture(autouse=True)
def fresh_caches():
    perf.clear_caches()
    yield
    perf.set_enabled(True)
    perf.clear_caches()


def _square(x):
    return x * x


def _first_draw(stream):
    return float(np.random.default_rng(stream).random())


def _boom(x):
    raise ValueError(f"trial {x} exploded")


def _die(x):
    os._exit(13)  # hard worker death, no exception to pickle


class TestParallelMap:
    def test_inline_and_pool_agree(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=1) == \
            parallel_map(_square, items, jobs=4) == \
            [x * x for x in items]

    def test_order_is_preserved(self):
        """Trial ``t`` receives the ``t``-th SeedSequence child of the
        experiment seed, in submission order, for any jobs value."""
        expected = [_first_draw(stream) for stream in spawn_seeds(10, 7)]
        assert seeded_trials(_first_draw, 7, seed=10, jobs=3) == expected
        assert seeded_trials(_first_draw, 7, seed=10, jobs=1) == expected

    def test_adjacent_seeds_do_not_collide(self):
        """``SeedSequence(seed).spawn`` keeps streams disjoint across
        adjacent experiment seeds — the old ``default_rng(seed + t)``
        convention had ``(seed=1, t=2)`` equal to ``(seed=2, t=1)``."""
        draws = {
            (seed, t): _first_draw(stream)
            for seed in (1, 2)
            for t, stream in enumerate(spawn_seeds(seed, 3))
        }
        assert draws[(1, 2)] != draws[(2, 1)]

    def test_worker_exception_raises_simulation_error(self):
        with pytest.raises(SimulationError, match="trial 3 exploded"):
            parallel_map(_boom, [3], jobs=1)
        with pytest.raises(SimulationError, match="exploded"):
            parallel_map(_boom, list(range(8)), jobs=4)

    def test_worker_crash_is_clean_not_hung(self):
        """A worker that dies outright (not an exception — the process
        vanishes) must surface as SimulationError, not a deadlock."""
        with pytest.raises(SimulationError, match="died"):
            parallel_map(_die, list(range(4)), jobs=2)


class TestDriverDeterminism:
    def test_lemma7_rows_identical_for_any_jobs(self):
        serial = experiments.lemma7_experiment(trials=3, seed=0, jobs=1)
        fanned = experiments.lemma7_experiment(trials=3, seed=0, jobs=4)
        assert json.dumps(serial, default=str) == \
            json.dumps(fanned, default=str)

    def test_figure1_rows_identical_for_any_jobs(self):
        serial = experiments.figure1_experiment(trials=2, seed=1, jobs=1)
        fanned = experiments.figure1_experiment(trials=2, seed=1, jobs=4)
        assert json.dumps(serial, default=str) == \
            json.dumps(fanned, default=str)

    def test_theorem11_rows_identical_for_any_jobs(self):
        serial = experiments.theorem11_experiment(seed=0, jobs=1)
        fanned = experiments.theorem11_experiment(seed=0, jobs=4)
        assert [asdict(r) for r in serial] == [asdict(r) for r in fanned]


class TestSpawnStreamContract:
    """Regression-pins the per-trial seeding scheme.

    ``spawn_seeds(seed, n)[t]`` must stay ``SeedSequence(seed)``'s
    ``t``-th spawn child — switching back to ``default_rng(seed + t)``
    (or any reparameterization of the child streams) would silently
    change every experiment's rows *and* reintroduce the
    adjacent-seed collision the spawn scheme exists to prevent.
    """

    def test_children_carry_entropy_and_spawn_key(self):
        for t, child in enumerate(spawn_seeds(42, 3)):
            assert child.entropy == 42
            assert child.spawn_key == (t,)

    def test_first_draws_pinned(self):
        draws = [float(np.random.default_rng(child).random())
                 for child in spawn_seeds(42, 3)]
        assert draws == pytest.approx([
            0.9167441575549085,
            0.4674907799518424,
            0.07123920291270869,
        ], abs=0.0)

    def test_adjacent_parent_seeds_do_not_collide(self):
        # the defect of default_rng(seed + t): trial t of seed s
        # equals trial t-1 of seed s+1.  Spawn children must not.
        later_trial = np.random.default_rng(spawn_seeds(7, 4)[1]).random(8)
        first_trial = np.random.default_rng(spawn_seeds(8, 4)[0]).random(8)
        assert not np.array_equal(later_trial, first_trial)

    def test_seeded_trials_uses_spawn_children(self):
        streams = seeded_trials(_first_draw, 3, seed=42, jobs=1)
        direct = [float(np.random.default_rng(child).random())
                  for child in spawn_seeds(42, 3)]
        assert streams == direct
