"""Tests for the table/figure regeneration (Tables 1–3, Figure 4)."""

import networkx as nx
import pytest

from repro.analysis.lattice import (
    PAPER_FIGURE4_EDGES,
    polyhedral_lattice_edges,
    subgroup_lattice,
)
from repro.analysis.tables import (
    table1_polyhedral_groups,
    table2_transitive_sets,
    table3_symmetricity,
)


class TestTable1:
    def test_all_rows_match_paper(self):
        rows = table1_polyhedral_groups()
        assert len(rows) == 3
        for row in rows:
            assert row["match"], row

    def test_orders(self):
        rows = {r["group"]: r for r in table1_polyhedral_groups()}
        assert rows["T"]["computed_order"] == 12
        assert rows["O"]["computed_order"] == 24
        assert rows["I"]["computed_order"] == 60


class TestTable2:
    def test_all_rows_match_paper(self):
        rows = table2_transitive_sets()
        assert len(rows) == 11
        for row in rows:
            assert row["match"], row

    def test_cardinalities_are_order_over_folding(self):
        for row in table2_transitive_sets():
            order = {"T": 12, "O": 24, "I": 60}[row["group"]]
            assert row["computed_cardinality"] == order // row["folding"]


class TestTable3:
    def test_all_rows_match_paper(self):
        rows = table3_symmetricity()
        assert len(rows) == 8
        for row in rows:
            assert row["match"], row


class TestFigure4:
    def test_polyhedral_lattice_matches_paper(self):
        assert polyhedral_lattice_edges() == PAPER_FIGURE4_EDGES

    def test_lattice_is_a_dag(self):
        graph = subgroup_lattice()
        assert nx.is_directed_acyclic_graph(graph)

    def test_cover_edges_only(self):
        # No edge may be implied by a 2-step path (cover relation).
        graph = subgroup_lattice()
        for a, b in graph.edges():
            for mid in graph.nodes():
                if mid in (a, b):
                    continue
                assert not (graph.has_edge(a, mid)
                            and graph.has_edge(mid, b)), (a, mid, b)

    def test_bottom_element(self):
        graph = subgroup_lattice()
        assert graph.in_degree("C1") == 0

    def test_o_not_below_i(self):
        graph = subgroup_lattice()
        assert not nx.has_path(graph, "O", "I")
        assert nx.has_path(graph, "T", "I")
        assert nx.has_path(graph, "T", "O")
