"""Tests for the EXPERIMENTS.md report generator."""

from pathlib import Path

from repro.analysis.report import generate_report, main


class TestGenerateReport:
    def test_contains_every_section(self):
        text = generate_report(trials_fig1=1, trials_l7=1, trials_t41=1)
        for marker in ["# EXPERIMENTS", "Table 1", "Table 2", "Table 3",
                       "Figure 4", "Figure 1", "Lemma 7", "Theorem 4.1",
                       "Theorem 1.1", "plane formation",
                       "Suzuki–Yamashita"]:
            assert marker in text, marker

    def test_all_table_rows_match(self):
        text = generate_report(trials_fig1=1, trials_l7=1, trials_t41=1)
        # Tables 1-3 and Figure 4 must match the paper exactly ('False'
        # further down is legitimate: unsolvable T11 predictions).
        tables_part = text.split("## F1")[0]
        assert "False" not in tables_part

    def test_main_writes_file(self, tmp_path, monkeypatch):
        # Patch the heavy drivers so main() is fast in unit tests.
        import repro.analysis.report as report

        monkeypatch.setattr(
            report, "generate_report",
            lambda **kw: "# EXPERIMENTS (stub)\n")
        target = tmp_path / "EXPERIMENTS.md"
        assert main([str(target)]) == 0
        assert target.read_text().startswith("# EXPERIMENTS")
