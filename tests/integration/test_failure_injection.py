"""Failure injection: invalid inputs and model violations must fail
loudly, never silently produce wrong formations."""

import numpy as np
import pytest

from repro import Configuration, UnsolvableError, form_pattern
from repro.errors import (
    ConfigurationError,
    EmbeddingError,
    GroupError,
    SimulationError,
)
from repro.patterns.library import named_pattern
from repro.robots.adversary import identity_frames
from repro.robots.model import LocalFrame, Observation
from repro.robots.scheduler import FsyncScheduler
from tests.conftest import generic_cloud


class TestModelViolations:
    def test_left_handed_frame_rejected(self):
        # The paper requires right-handed local coordinate systems.
        with pytest.raises(SimulationError):
            LocalFrame(rotation=np.diag([-1.0, 1.0, 1.0]))

    def test_zero_scale_frame_rejected(self):
        with pytest.raises(SimulationError):
            LocalFrame(scale=0.0)

    def test_observation_must_center_self(self):
        with pytest.raises(SimulationError):
            Observation([[0.1, 0, 0], [1, 0, 0]], self_index=0)

    def test_algorithm_returning_nan_rejected(self, cube):
        scheduler = FsyncScheduler(
            lambda obs: np.array([np.nan, 0.0, 0.0]), identity_frames(8))
        with pytest.raises(SimulationError):
            scheduler.step(cube)

    def test_algorithm_returning_wrong_shape_rejected(self, cube):
        scheduler = FsyncScheduler(lambda obs: np.zeros(2),
                                   identity_frames(8))
        with pytest.raises(SimulationError):
            scheduler.step(cube)


class TestProblemInstanceViolations:
    def test_unsolvable_instance_raises(self, cube, octagon):
        with pytest.raises(UnsolvableError):
            form_pattern(octagon, cube)

    def test_size_mismatch_raises(self, cube, octagon):
        with pytest.raises(ConfigurationError):
            form_pattern(cube, octagon[:-1])

    def test_two_robots_rejected(self):
        with pytest.raises(ConfigurationError):
            form_pattern([np.zeros(3), np.ones(3)],
                         [np.zeros(3), 2 * np.ones(3)])

    def test_initial_multiplicity_rejected(self, cube):
        with pytest.raises(ConfigurationError):
            form_pattern(cube + [cube[0]], cube + [cube[1]])

    def test_unsolvable_reaches_algorithm_error_without_check(
            self, cube, octagon):
        # Skipping the check does not silently succeed: the embedding
        # rejects the instance at run time instead.
        with pytest.raises((EmbeddingError, SimulationError)):
            form_pattern(octagon, cube, check=False, max_rounds=5)


class TestDegenerateGeometry:
    def test_degenerate_configuration_detected(self):
        config = Configuration([np.ones(3)] * 5)
        assert config.symmetry.kind == "degenerate"

    def test_group_construction_rejects_non_rotation(self):
        from repro.groups.group import RotationGroup

        with pytest.raises(GroupError):
            RotationGroup([np.diag([1.0, 1.0, -1.0])])

    def test_group_closure_validation(self):
        from repro.geometry.rotations import rotation_about_axis
        from repro.groups.group import RotationGroup

        broken = [np.eye(3), rotation_about_axis([0, 0, 1], 1.0)]
        with pytest.raises(GroupError):
            RotationGroup(broken, validate=True)

    def test_nonterminating_algorithm_detected(self):
        # An algorithm that keeps shrinking never satisfies the stop
        # condition: the scheduler reports instead of spinning.
        def shrink_forever(obs: Observation) -> np.ndarray:
            centroid = np.mean(obs.points, axis=0)
            return centroid * 0.5

        pts = generic_cloud(4, seed=3)
        scheduler = FsyncScheduler(shrink_forever, identity_frames(4))
        with pytest.raises(SimulationError):
            scheduler.run(pts, stop_condition=lambda c: False,
                          max_rounds=4)


class TestAdversaryMisuse:
    def test_symmetric_frames_reject_bad_witness(self, cube):
        from repro.groups.catalog import cyclic_group
        from repro.robots.adversary import symmetric_frames

        with pytest.raises(SimulationError):
            symmetric_frames(Configuration(cube),
                             cyclic_group(3, axis=(1, 1, 1)),
                             np.random.default_rng(0))

    def test_frames_count_mismatch(self, cube):
        from repro.robots.algorithms.pattern_formation import (
            make_pattern_formation_algorithm,
        )

        algorithm = make_pattern_formation_algorithm(cube)
        scheduler = FsyncScheduler(algorithm, identity_frames(5),
                                   target=cube)
        with pytest.raises(SimulationError):
            scheduler.step(cube)
