"""End-to-end integration tests across all subsystems.

These runs exercise detection → symmetricity → ψ_SYM → embedding →
matching → similarity checking in one pipeline, over instance families
and both adversaries, mirroring the experiment harness.
"""

import numpy as np
import pytest

from repro import (
    Configuration,
    form_pattern,
    formability_report,
    is_formable,
    random_frames,
    symmetric_frames,
    symmetricity,
)
from repro.geometry.transforms import Similarity
from repro.groups.subgroups import is_abstract_subgroup
from repro.patterns import polyhedra
from repro.patterns.library import compose_shells, named_pattern
from repro.robots.algorithms.pattern_formation import (
    make_pattern_formation_algorithm,
)
from repro.robots.scheduler import FsyncScheduler
from tests.conftest import generic_cloud


class TestTheorem11BothDirections:
    SOLVABLE = [
        ("cube", "octagon"),
        ("cube", "square_antiprism"),
        ("octahedron", "cube_like_prism"),
        ("square_antiprism", "cube"),
    ]

    def _points(self, name):
        if name == "cube_like_prism":
            return polyhedra.prism(3)
        return named_pattern(name)

    @pytest.mark.parametrize("initial,target", SOLVABLE)
    def test_solvable_instances_form(self, initial, target):
        p = self._points(initial)
        f = self._points(target)
        assert is_formable(Configuration(p), Configuration(f))
        result = form_pattern(p, f, seed=3)
        assert result.reached

    def test_unsolvable_instance_preserves_sigma(self, cube):
        # Lower bound: octagon -> cube with sigma(P) = C8 frames.
        octagon = named_pattern("octagon")
        config = Configuration(octagon)
        report = formability_report(config, Configuration(cube))
        assert not report.formable
        blocking = [g for g in report.blocking
                    if report.initial_symmetricity.witness(g) is not None]
        spec = sorted(blocking)[-1]
        witness = report.initial_symmetricity.witness(spec)
        frames = symmetric_frames(config, witness,
                                  np.random.default_rng(1))
        algorithm = make_pattern_formation_algorithm(cube)
        scheduler = FsyncScheduler(algorithm, frames, target=cube)
        points = octagon
        for _ in range(5):
            try:
                points = scheduler.step(points)
            except Exception:
                break  # rejecting the instance is a valid outcome
            current = Configuration(points)
            assert not current.is_similar_to(cube)
            gamma = current.symmetry
            if gamma.kind == "finite":
                assert is_abstract_subgroup(spec, gamma.group.spec)


class TestFullPipelineUnderSimilarity:
    def test_formation_commutes_with_input_similarity(self, rng):
        # Forming F from S(P) must still produce something similar to F.
        initial = named_pattern("cube")
        target = named_pattern("square_antiprism")
        sim = Similarity.random(rng)
        moved = sim.apply_all(initial)
        result = form_pattern(moved, target, seed=5)
        assert result.reached
        assert result.final.is_similar_to(target)

    def test_target_given_in_weird_coordinates(self, rng):
        # F's own coordinate system is irrelevant.
        initial = named_pattern("cube")
        sim = Similarity.random(rng)
        target = sim.apply_all(named_pattern("octagon"))
        result = form_pattern(initial, target, seed=2)
        assert result.reached


class TestAllRobotsAgree:
    def test_one_shot_convergence_from_terminal(self):
        # From a psi_sym-terminal configuration the whole formation
        # happens in ONE synchronized round — the strongest agreement
        # check (any disagreement would scatter the robots).
        initial = generic_cloud(8, seed=13)
        target = named_pattern("cube")
        result = form_pattern(initial, target, seed=13)
        assert result.reached
        assert result.rounds == 1


class TestScaleSweep:
    @pytest.mark.parametrize("n", [4, 6, 8, 12, 16])
    def test_generic_to_polygon_various_sizes(self, n):
        initial = generic_cloud(n, seed=n)
        target = polyhedra.regular_polygon_pattern(n)
        result = form_pattern(initial, target, seed=n)
        assert result.reached

    @pytest.mark.parametrize("l", [3, 4, 5])
    def test_prism_to_antiprism_family(self, l):
        result = form_pattern(polyhedra.prism(l), polyhedra.antiprism(l),
                              seed=l)
        assert result.reached


class TestCompositeInitialConfigurations:
    def test_figure26_composite(self):
        initial = compose_shells(named_pattern("octahedron"),
                                 named_pattern("cube"))
        rho = symmetricity(Configuration(initial))
        assert {str(s) for s in rho.maximal} == {"C2"}
        target = polyhedra.regular_polygon_pattern(14)
        result = form_pattern(initial, target, seed=0)
        assert result.reached

    def test_three_shell_composite(self):
        initial = compose_shells(named_pattern("tetrahedron"),
                                 named_pattern("octahedron"),
                                 named_pattern("cube"))
        target = polyhedra.antiprism(9)
        result = form_pattern(initial, target, seed=1)
        assert result.reached
