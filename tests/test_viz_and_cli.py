"""Tests for the SVG renderer and the command-line interface."""

import json

import numpy as np
import pytest

from repro.errors import ReproError
from repro.cli import main
from repro.patterns.library import named_pattern
from repro.viz import render_execution_svg, render_svg


class TestRenderSvg:
    def test_writes_valid_svg(self, tmp_path, cube):
        path = tmp_path / "cube.svg"
        svg = render_svg(cube, path)
        assert path.exists()
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<circle") == 8

    def test_target_overlay(self, tmp_path, cube, octagon):
        svg = render_svg(cube, tmp_path / "o.svg", target=octagon)
        # 8 robots (filled) + 8 targets (dashed).
        assert svg.count("<circle") == 16
        assert "stroke-dasharray" in svg

    def test_title(self, cube):
        svg = render_svg(cube, None, title="hello world")
        assert "hello world" in svg

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            render_svg([], None)

    def test_execution_grid(self, tmp_path, cube):
        from repro import form_pattern

        result = form_pattern(cube, named_pattern("octagon"), seed=1)
        path = tmp_path / "run.svg"
        svg = render_execution_svg(result.configurations, path)
        assert path.exists()
        assert svg.count("round ") == len(result.configurations)

    def test_accepts_raw_point_lists(self):
        svg = render_execution_svg([named_pattern("cube")], None)
        assert "<svg" in svg


class TestCli:
    def test_patterns(self, capsys):
        assert main(["patterns"]) == 0
        out = capsys.readouterr().out
        assert "cube" in out and "octagon" in out

    def test_detect_named(self, capsys):
        assert main(["detect", "cube"]) == 0
        out = capsys.readouterr().out
        assert "gamma(P) = O" in out
        assert "varrho(P) maximal = {D4}" in out

    def test_detect_file(self, tmp_path, capsys):
        payload = [list(map(float, p)) for p in named_pattern("octagon")]
        path = tmp_path / "octagon.json"
        path.write_text(json.dumps(payload))
        assert main(["detect", str(path)]) == 0
        assert "gamma(P) = D8" in capsys.readouterr().out

    def test_check_formable(self, capsys):
        assert main(["check", "cube", "octagon"]) == 0
        assert "Formable" in capsys.readouterr().out

    def test_check_unformable_exit_code(self, capsys):
        assert main(["check", "octagon", "cube"]) == 1
        assert "Unformable" in capsys.readouterr().out

    def test_form_with_svg(self, tmp_path, capsys):
        svg = tmp_path / "exec.svg"
        assert main(["form", "cube", "octagon", "--seed", "1",
                     "--svg", str(svg)]) == 0
        assert svg.exists()
        assert "formed: True" in capsys.readouterr().out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "match=True" in out
        assert "match=False" not in out

    def test_unknown_pattern_errors(self, capsys):
        assert main(["detect", "no_such_pattern"]) == 2
        assert "error:" in capsys.readouterr().err
