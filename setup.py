"""Packaging entry point.

The environment has no network access and no ``wheel`` package, so the
project deliberately uses the legacy ``setup.py`` path (``pip install
-e .`` falls back to ``setup.py develop`` when no pyproject.toml is
present), with metadata in setup.cfg.
"""

from setuptools import setup

setup()
